"""Crash-isolated multi-process sweep execution.

:class:`ProcessShardExecutor` shards the cells of a ``(t, r)`` sweep
grid across worker *processes* (see :mod:`repro.exec.worker` for the
worker side and the wire protocol), so a crashing, hanging or
OOM-killed computation takes down one task attempt, never the sweep:

* **Crash isolation** -- a dead worker is detected (pipe EOF / process
  sentinel), its in-flight cell is retried on a respawned worker, and
  the restart is counted (``repro_worker_restart_total{reason=...}``).
* **Hang detection** -- workers heartbeat on a background thread; a
  busy worker whose heartbeat goes stale (or whose per-task wall-clock
  timeout passes) is killed and replaced.
* **Bounded retries** -- infrastructure failures (crash, kill, hang,
  timeout, checksum-corrupt result) are retried with the
  :class:`~repro.exec.retry.RetryPolicy`'s exponential backoff and
  deterministic jitter; exceptions raised *by the engine* are
  deterministic and therefore not retried -- they surface as
  :class:`~repro.errors.WorkerError` failures exactly like the
  threaded path's.
* **Circuit breaker** -- every failure/success is recorded against the
  engine/backend's breaker in the shared
  :data:`~repro.exec.retry.BREAKERS` registry; when it opens, the
  sweep stops dispatching (remaining cells come back unevaluated) and
  the :class:`~repro.mc.certified.CertifiedChecker` fallback chain
  skips the engine until the cooldown expires.
* **Checkpointed resume** -- with a checkpoint
  (:class:`~repro.exec.checkpoint.SweepCheckpoint` or a path), every
  completed cell is durably appended the moment it arrives, cells
  already in the file are served without computing, and both are
  seeded into the shared joint-vector cache -- so an interrupted run
  (``SIGINT``, crash, ``kill -9``) resumes exactly where it stopped.

Determinism: the engines are deterministic functions of (model
content, engine parameters), results travel as raw float64 bytes with
BLAKE2b checksums, and retry jitter only schedules *when* work runs --
so a sweep's grid is **bit-identical** whatever the executor, worker
count, fault history or resume pattern.  The chaos suite
(``tests/test_exec_chaos.py``) asserts exactly that.

The executor returns the same :class:`~repro.algorithms.base.\
PartialSweep` the threaded path does, and populates the same caches,
so callers switch with one ``executor="process"`` argument.
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import os
import pickle
import shutil
import tempfile
import time
from typing import (Any, Callable, Dict, Iterable, List, Optional,
                    Sequence, Tuple, Union)

import numpy as np

from repro.algorithms.cache import EngineStats, joint_cache
from repro.algorithms.parallel import (_record_deadline_missed,
                                       remaining, resolve_workers)
from repro.errors import (NumericalError, RemoteTaskError,
                          WorkerCrashError, WorkerError)
from repro.exec.checkpoint import SweepCheckpoint
from repro.exec.retry import BREAKERS, BreakerRegistry, RetryPolicy
from repro.exec.worker import _checksum, worker_main
from repro.obs import OBS, REGISTRY, record_engine_stats
from repro.obs import span as obs_span
from repro.obs.recorder import FlightRecorder, ResourceSampler
from repro.obs.remote import merge_telemetry

#: Environment override for the multiprocessing start method
#: (``fork`` where available, else ``spawn``).
START_METHOD_ENV = "REPRO_EXEC_START"

#: How long a worker gets to exit after a ``("stop",)`` before it is
#: terminated (and then killed) during shutdown.
_SHUTDOWN_GRACE = 2.0


def breaker_key(engine) -> str:
    """The circuit-breaker key of *engine*: ``"<engine>/<backend>"``.

    One breaker per engine/backend combination, shared between the
    process executor (writer) and the certified checker's fallback
    chain (reader).
    """
    kernel = getattr(engine, "_kernel_request", None)
    if kernel is None:
        kernel = "auto"
    elif not isinstance(kernel, str):
        kernel = getattr(kernel, "name", str(kernel))
    return f"{engine.name}/{kernel}"


class _Worker:
    """Parent-side handle of one worker process."""

    __slots__ = ("process", "conn", "id", "ready", "acked",
                 "last_heartbeat", "task", "dead", "last_span")

    def __init__(self, process, conn, worker_id: int):
        self.process = process
        self.conn = conn
        self.id = worker_id
        self.ready = False
        self.acked = False
        self.last_heartbeat = time.monotonic()
        self.task: Optional[_Assignment] = None
        self.dead = False
        #: The parent-side "worker" span of this worker's most recent
        #: result; the telemetry delta that follows on the same pipe is
        #: re-parented under it.
        self.last_span: Optional[Any] = None

    @property
    def idle(self) -> bool:
        return self.acked and self.task is None and not self.dead


class _Assignment:
    """One in-flight task: which cell, which attempt, since when."""

    __slots__ = ("seq", "pos", "attempt", "started", "deadline")

    def __init__(self, seq: int, pos: int, attempt: int,
                 started: float, deadline: Optional[float]):
        self.seq = seq
        self.pos = pos
        self.attempt = attempt
        self.started = started
        self.deadline = deadline


class SweepProgress:
    """A point-in-time snapshot of a running process sweep.

    Handed to the executor's ``progress`` callback (throttled to
    ``progress_interval``); :meth:`render` formats the ``repro top``
    style one-liner the CLI prints behind ``--progress``.
    """

    __slots__ = ("done", "total", "failed", "pending", "elapsed",
                 "rate", "eta_seconds", "workers", "open_breakers",
                 "rss_bytes")

    def __init__(self, done: int, total: int, failed: int,
                 pending: int, elapsed: float, rate: float,
                 eta_seconds: Optional[float],
                 workers: Dict[int, str],
                 open_breakers: Tuple[str, ...],
                 rss_bytes: Dict[str, int]):
        self.done = done
        self.total = total
        self.failed = failed
        self.pending = pending
        self.elapsed = elapsed
        self.rate = rate
        self.eta_seconds = eta_seconds
        self.workers = workers
        self.open_breakers = open_breakers
        self.rss_bytes = rss_bytes

    def render(self) -> str:
        pct = (100.0 * self.done / self.total if self.total else 100.0)
        bits = [f"{self.done}/{self.total} cells ({pct:.0f}%)"]
        if self.failed:
            bits.append(f"{self.failed} failed")
        bits.append(f"{self.rate:.2f} cells/s")
        bits.append("eta --" if self.eta_seconds is None
                    else f"eta {self.eta_seconds:.0f}s")
        if self.workers:
            bits.append(" ".join(
                f"w{wid}:{state}"
                for wid, state in sorted(self.workers.items())))
        if self.open_breakers:
            bits.append("breakers open: "
                        + ",".join(self.open_breakers))
        if self.rss_bytes:
            bits.append(
                f"rss {max(self.rss_bytes.values()) / 1e6:.0f}MB")
        return " | ".join(bits)

    def __repr__(self) -> str:
        return f"SweepProgress({self.render()!r})"


class ProcessShardExecutor:
    """Shards sweep cells over crash-isolated worker processes.

    Parameters
    ----------
    max_workers:
        Worker process count; ``None`` resolves like the threaded
        fan-out (``min(cpu_count, 8, cells)``).
    task_timeout:
        Per-task wall-clock limit in seconds; an attempt exceeding it
        has its worker killed and is retried.  ``None`` = no limit
        (hangs are still caught by heartbeat staleness).
    heartbeat_interval / heartbeat_timeout:
        Workers beat every *interval* seconds; a busy worker silent
        for *timeout* seconds (default ``max(10 * interval, 2.0)``) is
        declared hung, killed and replaced.
    retry:
        The :class:`~repro.exec.retry.RetryPolicy` for infrastructure
        failures (default policy: 3 retries, exponential backoff with
        deterministic jitter).
    breakers:
        The :class:`~repro.exec.retry.BreakerRegistry` failures are
        recorded in (default: the shared :data:`~repro.exec.retry.\
BREAKERS` the certified checker reads).
    start_method:
        ``multiprocessing`` start method (default: ``REPRO_EXEC_START``
        env var, else ``fork`` where available, else ``spawn``).
    faults:
        Fault-injection spec string shipped to every worker
        (:mod:`repro.exec.faultinject`); ``None`` lets workers read
        ``REPRO_FAULTS`` from their environment.
    recorder_dir:
        Directory for the per-worker flight-recorder sidecars
        (``worker-<id>.jsonl``, see
        :class:`~repro.obs.recorder.FlightRecorder`).  ``None``
        (default) records into a temporary directory that is removed
        when the run finishes -- tails are read *before* cleanup, so
        failures still carry them; an explicit path is kept for
        post-mortem inspection.
    progress / progress_interval:
        Optional callback receiving a :class:`SweepProgress` snapshot
        at most every *progress_interval* seconds (and once at the
        end) while a run drives -- the CLI's ``--progress`` live line.

    Workers are spawned per :meth:`run` call and always torn down
    before it returns -- no worker outlives its sweep, and a worker
    whose parent dies uncleanly (``kill -9``) notices the reparenting
    through its heartbeat thread and exits on its own.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None,
                 task_timeout: Optional[float] = None,
                 heartbeat_interval: float = 0.2,
                 heartbeat_timeout: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None,
                 breakers: Optional[BreakerRegistry] = None,
                 start_method: Optional[str] = None,
                 faults: Optional[str] = None,
                 recorder_dir: Optional[str] = None,
                 progress: Optional[
                     Callable[[SweepProgress], None]] = None,
                 progress_interval: float = 0.5):
        self.max_workers = max_workers
        self.task_timeout = (None if task_timeout is None
                             else float(task_timeout))
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = (
            float(heartbeat_timeout) if heartbeat_timeout is not None
            else max(10.0 * self.heartbeat_interval, 2.0))
        self.retry = retry if retry is not None else RetryPolicy()
        self.breakers = breakers if breakers is not None else BREAKERS
        self.faults = faults
        self.recorder_dir = recorder_dir
        self.progress = progress
        self.progress_interval = float(progress_interval)
        method = start_method or os.environ.get(START_METHOD_ENV)
        if method is None:
            method = ("fork" if "fork" in mp.get_all_start_methods()
                      else "spawn")
        self.start_method = method
        self._context = mp.get_context(method)
        self._closed = False
        self._next_sweep_id = 0
        #: Lifetime counters (across runs) for tests and diagnostics.
        self.restarts = 0
        self.retries = 0
        #: Resource timelines of the most recent run:
        #: ``{label: [(monotonic_ts, rss_bytes, cpu_seconds), ...]}``.
        self.last_timelines: Dict[str, List[Tuple[float, int, float]]] = {}

    # ------------------------------------------------------------------

    def run(self, engine, model, times: Sequence[float],
            reward_bounds: Sequence[float], target: Iterable[int],
            deadline: Optional[float] = None,
            checkpoint: Union[None, str, SweepCheckpoint] = None):
        """Evaluate the sweep grid; returns a
        :class:`~repro.algorithms.base.PartialSweep`.

        The semantics mirror ``engine.joint_probability_sweep_partial``:
        *deadline* is an absolute ``time.monotonic()`` timestamp after
        which undone cells come back unevaluated; permanently failed
        cells appear in both ``unevaluated`` and ``failures``.
        """
        if self._closed:
            raise NumericalError("executor is closed")
        self._next_sweep_id += 1
        run = _Run(self, engine, model, times, reward_bounds, target,
                   deadline, checkpoint, self._next_sweep_id)
        return run.drive()

    def close(self) -> None:
        """Mark the executor closed (workers are per-run; none linger)."""
        self._closed = True

    def __enter__(self) -> "ProcessShardExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ProcessShardExecutor(max_workers={self.max_workers}, "
                f"start_method={self.start_method!r})")


class _Run:
    """State and scheduler loop of one :meth:`ProcessShardExecutor.run`."""

    def __init__(self, executor: ProcessShardExecutor, engine, model,
                 times, reward_bounds, target, deadline, checkpoint,
                 sweep_id: int):
        self.executor = executor
        self.engine = engine
        self.model = model
        self.deadline = deadline
        self.sweep_id = sweep_id
        self.times = [float(t) for t in times]
        self.rewards = [float(r) for r in reward_bounds]
        self.indicator = engine._validate(model, 0.0, 0.0, target)
        for t in self.times:
            if t < 0.0:
                raise NumericalError(
                    f"time bound must be >= 0, got {t}")
        for r in self.rewards:
            if r < 0.0:
                raise NumericalError(
                    f"reward bound must be >= 0, got {r}")
        self.target_list = [int(s)
                            for s in np.flatnonzero(self.indicator)]
        self.token = engine._cache_token()
        self.mask = self.indicator.tobytes()
        self.spec = engine.spec()
        self.cells = [(i, j) for i in range(len(self.times))
                      for j in range(len(self.rewards))]
        shape = (len(self.times), len(self.rewards), model.num_states)
        self.grid = np.full(shape, np.nan)
        self.completed = np.zeros(shape[:2], dtype=bool)
        self.breaker = executor.breakers.breaker(breaker_key(engine))
        self.checkpoint: Optional[SweepCheckpoint] = None
        self._own_checkpoint = False
        if checkpoint is not None:
            if isinstance(checkpoint, SweepCheckpoint):
                self.checkpoint = checkpoint
            else:
                self.checkpoint = SweepCheckpoint.open(
                    str(checkpoint), model.fingerprint, self.token,
                    self.times, self.rewards, self.indicator)
                self._own_checkpoint = True
        self.resumed = 0
        # Scheduling state.
        self.workers: Dict[int, _Worker] = {}
        self._next_worker_id = 0
        self._next_seq = 0
        self.pending: List[Tuple[float, int, int]] = []  # heap
        self.attempts_failed: Dict[int, int] = {}
        self.failures: Dict[int, WorkerError] = {}
        self.aborted: Optional[str] = None
        self._model_blob: Optional[bytes] = None
        # Observability state (tentpole wiring).  The enabled flag is
        # latched here so a mid-run toggle cannot desynchronise the
        # parent's merge side from what the workers were spawned with.
        self.obs_enabled = bool(OBS.enabled)
        self.sweep_span: Optional[Any] = None
        self.sampler: Optional[ResourceSampler] = None
        self._worker_stats: Dict[str, int] = {}
        self._started = time.monotonic()
        self._last_progress = 0.0
        if executor.recorder_dir is not None:
            self.recorder_dir: Optional[str] = executor.recorder_dir
            self._own_recorder_dir = False
            os.makedirs(self.recorder_dir, exist_ok=True)
        else:
            self.recorder_dir = tempfile.mkdtemp(
                prefix="repro-flight-")
            self._own_recorder_dir = True

    # -- identity helpers ----------------------------------------------

    def _cache_key(self, pos: int):
        i, j = self.cells[pos]
        return (self.model.fingerprint, self.token, self.times[i],
                self.rewards[j], self.mask)

    def _label(self, pos: int) -> str:
        i, j = self.cells[pos]
        return f"cell (t={self.times[i]}, r={self.rewards[j]})"

    def model_blob(self) -> bytes:
        if self._model_blob is None:
            self._model_blob = pickle.dumps(
                self.model, protocol=pickle.HIGHEST_PROTOCOL)
        return self._model_blob

    # -- the drive loop ------------------------------------------------

    def drive(self):
        from repro.algorithms.base import PartialSweep
        engine = self.engine
        stats_before = engine.stats.as_dict()
        engine.stats.sweep_points += len(self.cells)
        self._prefill()
        self._start_sampler()
        with obs_span("process_sweep", engine=engine.name,
                      points=len(self.cells),
                      workers=resolve_workers(
                          self.executor.max_workers,
                          len(self.pending))) as span:
            self.sweep_span = span if self.obs_enabled else None
            # The breaker gates whole runs, not individual cells: an
            # open breaker (repeated failures in earlier runs) vetoes
            # up front, while failures *within* this run are bounded
            # by the retry policy -- aborting mid-sweep would make
            # completion depend on failure arrival order.  In the
            # half-open state this run is the probe.
            if self.pending and not self.breaker.allow():
                self.aborted = (f"circuit breaker "
                                f"{self.breaker.key!r} is open")
                self.pending.clear()
            try:
                self._loop()
            finally:
                self._shutdown()
                self._stop_sampler()
                self._cleanup_recorders()
                if self._own_checkpoint and self.checkpoint is not None:
                    self.checkpoint.close()
            self._report_progress(time.monotonic(), force=True)
            if self.obs_enabled:
                self._publish_parent_stats(stats_before)
            unevaluated = [
                (i, j) for pos, (i, j) in enumerate(self.cells)
                if not self.completed[i, j]]
            failures = [self.failures[pos]
                        for pos in sorted(self.failures)]
            span.set(unevaluated=len(unevaluated),
                     resumed=self.resumed,
                     restarts=self.executor.restarts,
                     retries=self.executor.retries)
            if self.aborted:
                span.set(aborted=self.aborted)
            return PartialSweep(grid=self.grid,
                                completed=self.completed,
                                unevaluated=tuple(unevaluated),
                                failures=tuple(failures))

    def _publish_parent_stats(self, before: Dict[str, int]) -> None:
        """Publish the parent's *own* engine-stats contribution.

        Workers already shipped their per-cell deltas (merged with a
        ``worker="process-N"`` label); what remains unlabelled is the
        parent-local share -- prefill cache hits, cache evictions from
        the merge side, and the sweep-point count -- so the summed
        counters match a thread-executor run of the same grid.
        """
        after = self.engine.stats.as_dict()
        local = {}
        for key, value in after.items():
            delta = (value - before.get(key, 0)
                     - self._worker_stats.get(key, 0))
            if delta > 0:
                local[key] = delta
        if local:
            record_engine_stats(OBS.metrics, self.engine.name, local)

    # -- observability plumbing ----------------------------------------

    def _start_sampler(self) -> None:
        """Start the parent-side resource-timeline sampler.

        Runs when a progress callback wants RSS figures or when
        observability is on; the registry is only wired in the latter
        case so an obs-off run's registry stays byte-identical.
        """
        if self.executor.progress is None and not self.obs_enabled:
            return
        registry = OBS.metrics if self.obs_enabled else None
        self.sampler = ResourceSampler(registry=registry)
        self.sampler.watch("main", os.getpid())
        self.sampler.start()

    def _stop_sampler(self) -> None:
        if self.sampler is None:
            return
        self.sampler.stop()
        self.executor.last_timelines = self.sampler.timelines()
        self.sampler = None

    def _recorder_path(self, worker_id: int) -> str:
        assert self.recorder_dir is not None
        return os.path.join(self.recorder_dir,
                            f"worker-{worker_id}.jsonl")

    def _flight_tail(self, worker_id: int) -> Tuple[Dict[str, Any], ...]:
        """The victim's last recorded activity, straight off disk."""
        return FlightRecorder.read_tail(self._recorder_path(worker_id))

    def _cleanup_recorders(self) -> None:
        if self._own_recorder_dir and self.recorder_dir is not None:
            shutil.rmtree(self.recorder_dir, ignore_errors=True)
            self.recorder_dir = None

    def _merge_telemetry(self, worker: _Worker,
                         payload: Dict[str, Any]) -> None:
        """Fold one worker's observability delta into the parent."""
        if not self.obs_enabled:
            return
        parent = worker.last_span or self.sweep_span
        worker.last_span = None
        merge_telemetry(payload, OBS.metrics, tracer=OBS.tracer,
                        parent_span=parent,
                        convergence=OBS.convergence,
                        worker=f"process-{worker.id}")

    def _progress_snapshot(self, now: float) -> SweepProgress:
        done = int(self.completed.sum())
        total = len(self.cells)
        elapsed = max(now - self._started, 1e-9)
        rate = done / elapsed
        left = total - done
        eta = (left / rate) if rate > 0.0 and left else None
        states: Dict[int, str] = {}
        for worker in self.workers.values():
            if worker.dead:
                states[worker.id] = "dead"
            elif worker.task is not None:
                states[worker.id] = self._label(worker.task.pos)
            elif worker.acked:
                states[worker.id] = "idle"
            else:
                states[worker.id] = "starting"
        open_breakers = tuple(self.executor.breakers.open_keys())
        rss: Dict[str, int] = {}
        if self.sampler is not None:
            rss = {label: sample[1] for label, sample
                   in self.sampler.latest().items()}
        return SweepProgress(done=done, total=total,
                             failed=len(self.failures),
                             pending=len(self.pending),
                             elapsed=elapsed, rate=rate,
                             eta_seconds=eta, workers=states,
                             open_breakers=open_breakers,
                             rss_bytes=rss)

    def _report_progress(self, now: float, force: bool = False) -> None:
        callback = self.executor.progress
        if callback is None:
            return
        if (not force and now - self._last_progress
                < self.executor.progress_interval):
            return
        self._last_progress = now
        try:
            callback(self._progress_snapshot(now))
        except Exception:  # noqa: BLE001 - progress must not kill a run
            pass

    def _prefill(self) -> None:
        """Serve cells from the checkpoint and the shared cache; queue
        the rest."""
        if self.checkpoint is not None:
            served = self.checkpoint.load_into(self.grid,
                                               self.completed)
            self.resumed = len(served)
        for pos, (i, j) in enumerate(self.cells):
            key = self._cache_key(pos)
            if self.completed[i, j]:
                # Resumed from the checkpoint: seed the cache so later
                # scalar queries (and the certified checker) hit.
                if joint_cache.get(key) is None:
                    frozen = self.grid[i, j].copy()
                    frozen.flags.writeable = False
                    self.engine.stats.cache_evictions += (
                        joint_cache.put(key, frozen))
                continue
            cached = joint_cache.get(key)
            if cached is not None:
                self.engine.stats.cache_hits += 1
                self._complete(pos, np.asarray(cached, dtype=float),
                               from_cache=True)
                continue
            heapq.heappush(self.pending, (0.0, pos, 0))

    def _in_flight(self) -> List[_Worker]:
        return [w for w in self.workers.values() if w.task is not None]

    def _loop(self) -> None:
        executor = self.executor
        while (self.pending or self._in_flight()) and not self.aborted:
            now = time.monotonic()
            if remaining(self.deadline) <= 0.0:
                undone = len(self.pending) + len(self._in_flight())
                _record_deadline_missed(undone)
                break
            want = resolve_workers(
                executor.max_workers,
                len(self.pending) + len(self._in_flight()))
            while len(self.workers) < want:
                self._spawn()
            self._dispatch(now)
            self._wait(now)
            self._reap()
            now = time.monotonic()
            self._check_liveness(now)
            self._report_progress(now)

    def _dispatch(self, now: float) -> None:
        idle = [w for w in self.workers.values() if w.idle]
        while idle and self.pending and self.pending[0][0] <= now:
            _, pos, attempt = heapq.heappop(self.pending)
            worker = idle.pop()
            seq = self._next_seq
            self._next_seq += 1
            i, j = self.cells[pos]
            try:
                worker.conn.send(("task", seq, pos, i, j, attempt))
            except (BrokenPipeError, OSError):
                worker.dead = True
                heapq.heappush(self.pending, (now, pos, attempt))
                continue
            task_deadline = (None if self.executor.task_timeout is None
                             else now + self.executor.task_timeout)
            worker.task = _Assignment(seq, pos, attempt, now,
                                      task_deadline)
            worker.last_heartbeat = now

    def _wait_timeout(self, now: float) -> float:
        wake = [0.5]
        if self.pending:
            wake.append(self.pending[0][0] - now)
        for worker in self.workers.values():
            if worker.task is not None:
                wake.append(worker.last_heartbeat
                            + self.executor.heartbeat_timeout - now)
                if worker.task.deadline is not None:
                    wake.append(worker.task.deadline - now)
        left = remaining(self.deadline)
        if left != float("inf"):
            wake.append(left)
        return max(0.01, min(wake))

    def _wait(self, now: float) -> None:
        handles = []
        for worker in self.workers.values():
            if not worker.dead:
                handles.append(worker.conn)
                handles.append(worker.process.sentinel)
        if not handles:
            return
        try:
            ready = mp.connection.wait(handles,
                                       self._wait_timeout(now))
        except OSError:  # pragma: no cover - raced with a dying worker
            ready = []
        by_conn = {w.conn: w for w in self.workers.values()}
        for handle in ready:
            worker = by_conn.get(handle)
            if worker is not None:
                self._drain(worker)
        # Sentinel readiness (process exit) is handled by _reap().

    def _drain(self, worker: _Worker) -> None:
        while not worker.dead:
            try:
                if not worker.conn.poll():
                    return
                message = worker.conn.recv()
            except (EOFError, OSError):
                worker.dead = True
                return
            self._handle(worker, message)

    def _handle(self, worker: _Worker, message: Tuple) -> None:
        kind = message[0]
        if kind == "ready":
            worker.ready = True
            worker.last_heartbeat = time.monotonic()
            worker.conn.send(
                ("sweep", self.sweep_id, self.model.fingerprint,
                 self.spec, self.times, self.rewards,
                 self.target_list))
        elif kind == "need_model":
            worker.conn.send(("model", self.model.fingerprint,
                              self.model_blob()))
        elif kind == "sweep_ok":
            worker.acked = True
            worker.last_heartbeat = time.monotonic()
        elif kind == "heartbeat":
            worker.last_heartbeat = time.monotonic()
        elif kind == "telemetry":
            self._merge_telemetry(worker, message[2])
        elif kind == "result":
            self._handle_result(worker, message)
        elif kind == "error":
            _, seq, exc_type, text, tb = message
            task = worker.task
            if task is None or task.seq != seq:
                return
            worker.task = None
            cause = RemoteTaskError(exc_type, text, tb)
            # Engine exceptions are deterministic: retrying replays
            # the same failure, so give up immediately (the threaded
            # path's semantics).
            self._give_up(task.pos, cause)
            self.breaker.record_failure()

    def _handle_result(self, worker: _Worker, message: Tuple) -> None:
        _, seq, data, checksum, delta = message
        task = worker.task
        if task is None or task.seq != seq:
            worker.last_span = None
            return  # stale result of a task already retried elsewhere
        worker.task = None
        elapsed = time.monotonic() - task.started
        if _checksum(data) != checksum:
            worker.last_span = None
            self._task_failed(
                task.pos, task.attempt, "corrupt",
                WorkerCrashError("corrupt", worker.id,
                                 flight_tail=self._flight_tail(
                                     worker.id)))
            return
        vector = np.frombuffer(data, dtype="<f8").astype(float,
                                                         copy=True)
        self.engine.stats.merge(EngineStats(**delta))
        self._complete(task.pos, vector)
        self.breaker.record_success()
        if self.obs_enabled:
            for key, value in delta.items():
                self._worker_stats[key] = (
                    self._worker_stats.get(key, 0) + value)
            OBS.metrics.histogram(
                "repro_sweep_cell_seconds",
                engine=self.engine.name).observe(elapsed)
            with OBS.tracer.span("worker",
                                 worker=f"process-{worker.id}",
                                 cell=self._label(task.pos),
                                 seconds=round(elapsed, 6)) as wspan:
                pass
            # The telemetry delta for this cell follows on the same
            # pipe; its spans re-parent under this "worker" span.
            worker.last_span = wspan

    def _complete(self, pos: int, vector: np.ndarray,
                  from_cache: bool = False) -> None:
        i, j = self.cells[pos]
        self.grid[i, j] = vector
        self.completed[i, j] = True
        if not from_cache:
            frozen = vector.copy()
            frozen.flags.writeable = False
            self.engine.stats.cache_evictions += joint_cache.put(
                self._cache_key(pos), frozen)
        if self.checkpoint is not None:
            self.checkpoint.append((i, j), vector)

    # -- failure machinery ---------------------------------------------

    def _give_up(self, pos: int, cause: BaseException) -> None:
        tail = getattr(cause, "flight_tail", ())
        self.failures[pos] = WorkerError(pos, cause, self._label(pos),
                                         flight_tail=tail)

    def _task_failed(self, pos: int, attempt: int, reason: str,
                     cause: BaseException) -> None:
        self.breaker.record_failure()
        count = self.attempts_failed.get(pos, 0) + 1
        self.attempts_failed[pos] = count
        if self.executor.retry.gives_up(count):
            self._give_up(pos, cause)
            return
        REGISTRY.counter("repro_retry_total", reason=reason).inc()
        self.executor.retries += 1
        delay = self.executor.retry.delay(pos, count)
        heapq.heappush(self.pending,
                       (time.monotonic() + delay, pos, count))

    def _worker_failed(self, worker: _Worker, reason: str,
                       exitcode: Optional[int]) -> None:
        """Count the restart and retry the worker's in-flight task."""
        REGISTRY.counter("repro_worker_restart_total",
                         reason=reason).inc()
        self.executor.restarts += 1
        task = worker.task
        worker.task = None
        if task is not None:
            self._task_failed(
                task.pos, task.attempt, reason,
                WorkerCrashError(reason, worker.id, exitcode,
                                 flight_tail=self._flight_tail(
                                     worker.id)))

    def _reap(self) -> None:
        """Remove workers that died on their own (crash, OOM kill)."""
        for worker in list(self.workers.values()):
            if not worker.dead and worker.process.is_alive():
                continue
            self._drain(worker)  # keep results sent before death
            worker.process.join(timeout=0.5)
            exitcode = worker.process.exitcode
            reason = ("killed" if exitcode is not None and exitcode < 0
                      else "crash")
            self._discard(worker)
            self._worker_failed(worker, reason, exitcode)

    def _check_liveness(self, now: float) -> None:
        """Kill busy workers that timed out or stopped heartbeating."""
        for worker in list(self.workers.values()):
            task = worker.task
            if task is None:
                continue
            if (task.deadline is not None and now > task.deadline):
                self._kill(worker, "timeout")
            elif (now - worker.last_heartbeat
                    > self.executor.heartbeat_timeout):
                self._kill(worker, "hang")

    def _kill(self, worker: _Worker, reason: str) -> None:
        self._terminate(worker)
        self._discard(worker)
        self._worker_failed(worker, reason, None)

    @staticmethod
    def _terminate(worker: _Worker) -> None:
        process = worker.process
        if process.is_alive():
            process.terminate()
            process.join(timeout=0.5)
        if process.is_alive():  # pragma: no cover - SIGTERM ignored
            process.kill()
            process.join(timeout=1.0)

    def _discard(self, worker: _Worker) -> None:
        self.workers.pop(worker.id, None)
        if self.sampler is not None:
            self.sampler.unwatch(f"process-{worker.id}")
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass

    # -- worker lifecycle ----------------------------------------------

    def _spawn(self) -> None:
        context = self.executor._context
        parent_conn, child_conn = context.Pipe()
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        process = context.Process(
            target=worker_main,
            args=(child_conn, worker_id,
                  self.executor.heartbeat_interval,
                  self.executor.faults,
                  self.obs_enabled,
                  self._recorder_path(worker_id)),
            name=f"repro-exec-{self.sweep_id}-{worker_id}",
            daemon=True)
        process.start()
        child_conn.close()
        self.workers[worker_id] = _Worker(process, parent_conn,
                                          worker_id)
        if self.sampler is not None and process.pid is not None:
            self.sampler.watch(f"process-{worker_id}", process.pid)

    def _shutdown(self) -> None:
        """Stop every worker; none may outlive the run."""
        for worker in self.workers.values():
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        grace = time.monotonic() + _SHUTDOWN_GRACE
        if self.obs_enabled:
            self._drain_final_telemetry(grace)
        for worker in self.workers.values():
            worker.process.join(
                timeout=max(0.0, grace - time.monotonic()))
        for worker in list(self.workers.values()):
            self._terminate(worker)
            self._discard(worker)
        self.workers.clear()

    def _drain_final_telemetry(self, deadline: float) -> None:
        """Collect each worker's final telemetry drain before teardown.

        Workers send one last ``("telemetry", ...)`` before honouring
        the stop (pipe FIFO guarantees it precedes their exit), so
        polling until the grace deadline loses nothing from workers
        that die mid-drain -- their pipes just EOF.
        """
        # A worker's last per-cell telemetry may still be in flight
        # when the loop exits; its ``last_span`` is intact, so that
        # payload still lands under the right worker span, while the
        # final drain proper (sent after it) re-parents to the sweep
        # span because ``_merge_telemetry`` consumes the span once.
        waiting = [w for w in self.workers.values() if not w.dead]
        while waiting and time.monotonic() < deadline:
            still = []
            for worker in waiting:
                got_final = False
                try:
                    while worker.conn.poll(0.05):
                        message = worker.conn.recv()
                        if message[0] == "telemetry":
                            self._merge_telemetry(worker, message[2])
                            got_final = True
                except (EOFError, OSError):
                    worker.dead = True
                    continue
                if not got_final and worker.process.is_alive():
                    still.append(worker)
            waiting = still


class ThreadShardExecutor:
    """The threaded executor behind the same ``run`` interface.

    Delegates to the engine's in-process partial-sweep path
    (GIL-releasing thread fan-out), so ``executor="thread"`` and the
    historical ``executor=None`` behave identically -- including
    checkpoint support, which the engine path shares.
    """

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = max_workers

    def run(self, engine, model, times, reward_bounds, target,
            deadline: Optional[float] = None,
            checkpoint: Union[None, str, SweepCheckpoint] = None):
        return engine.joint_probability_sweep_partial(
            model, times, reward_bounds, target, deadline=deadline,
            max_workers=self.max_workers, checkpoint=checkpoint)

    def close(self) -> None:
        pass

    def __enter__(self) -> "ThreadShardExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def __repr__(self) -> str:
        return f"ThreadShardExecutor(max_workers={self.max_workers})"


#: The executor names ``resolve_executor`` accepts.
EXECUTOR_NAMES: Tuple[str, ...] = ("thread", "process")


def resolve_executor(executor: Union[None, str, Any],
                     max_workers: Optional[int] = None):
    """An executor object from a name, an instance, or ``None``.

    ``None`` and ``"thread"`` give the in-process
    :class:`ThreadShardExecutor`; ``"process"`` a fresh
    :class:`ProcessShardExecutor`; an object with a ``run`` method
    passes through unchanged (its own worker settings win).
    """
    if executor is None or executor == "thread":
        return ThreadShardExecutor(max_workers=max_workers)
    if executor == "process":
        return ProcessShardExecutor(max_workers=max_workers)
    if hasattr(executor, "run"):
        return executor
    raise NumericalError(
        f"unknown executor {executor!r}; expected "
        f"{', '.join(EXECUTOR_NAMES)}, or an executor object")
