"""Durable JSONL checkpoints for ``(t, r)`` sweep grids.

A checkpoint file makes a long sweep restartable across process death:
every completed cell is appended (and flushed) the moment it finishes,
so a crash -- including ``kill -9`` of the driving process -- loses at
most the cells in flight.  Re-running the same sweep with the same
checkpoint path resumes exactly where the previous run stopped: loaded
cells are served from the file, only the remainder is dispatched.

File format: one JSON object per line.

* Line 1 is the **header** identifying the sweep the file belongs to::

      {"schema": 1, "kind": "repro-sweep-checkpoint",
       "fingerprint": "<model BLAKE2b>", "engine": "<cache token>",
       "times": [...], "rewards": [...], "target": "<indicator hash>",
       "num_states": n}

  A checkpoint is only ever merged into the *identical* sweep: model
  content fingerprint, engine accuracy parameters (the cache token),
  grid axes and target set must all match, otherwise
  :class:`~repro.errors.CheckpointError` is raised.  This is the same
  content-identity contract the joint-vector cache uses.

* Every further line is one completed **cell**::

      {"cell": [i, j], "data": "<base64 float64 LE bytes>",
       "checksum": "<BLAKE2b of the raw bytes>"}

  Values are stored as raw little-endian float64 bytes (base64), so a
  resumed grid is **bit-identical** to an uninterrupted run -- no
  decimal round-trip.  Rows failing their checksum, truncated by a
  crash mid-write, or duplicated are skipped/deduplicated on load; the
  affected cells are simply recomputed.

Appends are lock-protected and flushed per row (``flush`` +
``os.fsync``), so concurrent worker threads may append and the rows
are durable when :meth:`SweepCheckpoint.append` returns.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CheckpointError

SCHEMA = 1
KIND = "repro-sweep-checkpoint"


def _checksum(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def _indicator_hash(indicator: np.ndarray) -> str:
    return _checksum(np.ascontiguousarray(indicator, dtype=float)
                     .tobytes())


def sweep_header(fingerprint: str, engine_token: Tuple,
                 times: Sequence[float], rewards: Sequence[float],
                 indicator: np.ndarray) -> Dict:
    """The header object identifying one sweep's checkpoint."""
    return {
        "schema": SCHEMA,
        "kind": KIND,
        "fingerprint": fingerprint,
        "engine": repr(engine_token),
        "times": [float(t) for t in times],
        "rewards": [float(r) for r in rewards],
        "target": _indicator_hash(indicator),
        "num_states": int(indicator.shape[0]),
    }


class SweepCheckpoint:
    """One sweep's append-only JSONL checkpoint file.

    Use :meth:`open` with the sweep's identity; it validates an
    existing file's header (raising
    :class:`~repro.errors.CheckpointError` on mismatch) or writes a
    fresh header, and pre-loads every valid completed cell.
    """

    def __init__(self, path: str, header: Dict,
                 cells: Dict[Tuple[int, int], np.ndarray]):
        self.path = path
        self.header = header
        self._cells = cells
        self._lock = threading.Lock()
        self._handle = open(path, "a", encoding="utf-8")

    # ------------------------------------------------------------------

    @classmethod
    def open(cls, path: str, fingerprint: str, engine_token: Tuple,
             times: Sequence[float], rewards: Sequence[float],
             indicator: np.ndarray) -> "SweepCheckpoint":
        """Open (resuming) or create the checkpoint for this sweep."""
        header = sweep_header(fingerprint, engine_token, times,
                              rewards, indicator)
        cells: Dict[Tuple[int, int], np.ndarray] = {}
        n = int(indicator.shape[0])
        shape = (len(times), len(rewards))
        if os.path.exists(path) and os.path.getsize(path) > 0:
            cells = cls._load(path, header, shape, n)
        else:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(header) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        return cls(path, header, cells)

    @staticmethod
    def _load(path: str, header: Dict, shape: Tuple[int, int],
              num_states: int) -> Dict[Tuple[int, int], np.ndarray]:
        with open(path, "r", encoding="utf-8") as handle:
            first = handle.readline()
            try:
                existing = json.loads(first)
            except json.JSONDecodeError:
                raise CheckpointError(
                    f"{path} is not a sweep checkpoint (unreadable "
                    f"header line)") from None
            if not (isinstance(existing, dict)
                    and existing.get("kind") == KIND):
                raise CheckpointError(
                    f"{path} is not a sweep checkpoint")
            for field in ("schema", "fingerprint", "engine", "times",
                          "rewards", "target", "num_states"):
                if existing.get(field) != header[field]:
                    raise CheckpointError(
                        f"checkpoint {path} was written for a "
                        f"different sweep: field {field!r} is "
                        f"{existing.get(field)!r}, this sweep needs "
                        f"{header[field]!r}")
            cells: Dict[Tuple[int, int], np.ndarray] = {}
            for line in handle:
                row = SweepCheckpoint._parse_row(line, shape,
                                                 num_states)
                if row is not None:
                    cells[row[0]] = row[1]
            return cells

    @staticmethod
    def _parse_row(line: str, shape: Tuple[int, int], num_states: int
                   ) -> Optional[Tuple[Tuple[int, int], np.ndarray]]:
        """One cell from a data row, or ``None`` when the row is
        truncated, corrupt or out of range (the cell recomputes)."""
        line = line.strip()
        if not line:
            return None
        try:
            row = json.loads(line)
            i, j = (int(row["cell"][0]), int(row["cell"][1]))
            data = base64.b64decode(row["data"], validate=True)
        except (json.JSONDecodeError, KeyError, ValueError, TypeError,
                IndexError):
            return None
        if not (0 <= i < shape[0] and 0 <= j < shape[1]):
            return None
        if row.get("checksum") != _checksum(data):
            return None
        vector = np.frombuffer(data, dtype="<f8")
        if vector.shape != (num_states,):
            return None
        return (i, j), vector.astype(float, copy=True)

    # ------------------------------------------------------------------

    @property
    def cells(self) -> Dict[Tuple[int, int], np.ndarray]:
        """Completed cells loaded from disk plus those appended since
        (do not mutate)."""
        with self._lock:
            return dict(self._cells)

    def __contains__(self, cell: Tuple[int, int]) -> bool:
        with self._lock:
            return tuple(cell) in self._cells

    def __len__(self) -> int:
        with self._lock:
            return len(self._cells)

    def append(self, cell: Tuple[int, int], vector: np.ndarray) -> None:
        """Record one completed cell, durably (flush + fsync)."""
        i, j = int(cell[0]), int(cell[1])
        data = np.ascontiguousarray(vector, dtype="<f8").tobytes()
        row = json.dumps({"cell": [i, j],
                          "data": base64.b64encode(data).decode("ascii"),
                          "checksum": _checksum(data)})
        with self._lock:
            if (i, j) in self._cells:
                return
            self._cells[(i, j)] = np.asarray(vector, dtype=float).copy()
            self._handle.write(row + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def load_into(self, grid: np.ndarray,
                  completed: np.ndarray) -> List[Tuple[int, int]]:
        """Fill *grid*/*completed* from the stored cells.

        Returns the list of cells that were served from the file, in
        grid order -- the resume merge point of the partial-sweep path.
        """
        served = []
        with self._lock:
            for (i, j), vector in sorted(self._cells.items()):
                grid[i, j] = vector
                completed[i, j] = True
                served.append((i, j))
        return served

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"SweepCheckpoint({self.path!r}, "
                f"cells={len(self)})")
