"""Tokeniser for the CSRL concrete syntax.

The token stream feeds the recursive-descent parser in
:mod:`repro.logic.parser`.  Reserved words are the operator letters
``P S X U F G``, the constants ``true``/``false`` and ``inf``; all
other identifiers are atomic propositions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import ParseError

#: Token kinds produced by the lexer.
KINDS = ("NUMBER", "IDENT", "KEYWORD", "CMP", "EQ", "LPAREN", "RPAREN",
         "LBRACKET", "RBRACKET", "COMMA", "AND", "OR", "NOT", "IMPLIES",
         "EOF")

KEYWORDS = {"P", "S", "X", "U", "F", "G", "R", "I", "C",
            "true", "false", "inf"}

_TOKEN_RE = re.compile(r"""
    (?P<WS>\s+)
  | (?P<NUMBER>\d+(\.\d*)?([eE][+-]?\d+)?|\.\d+([eE][+-]?\d+)?)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<IMPLIES>=>)
  | (?P<CMP><=|>=|<|>)
  | (?P<EQ>=)
  | (?P<AND>&&|&)
  | (?P<OR>\|\||\|)
  | (?P<NOT>!|~)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<LBRACKET>\[)
  | (?P<RBRACKET>\])
  | (?P<COMMA>,)
""", re.VERBOSE)


@dataclass(frozen=True)
class Token:
    """A single lexeme with its source position."""
    kind: str
    text: str
    position: int

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.position}"


def tokenize(source: str) -> List[Token]:
    """Tokenise *source*; raises :class:`ParseError` on illegal input."""
    tokens: List[Token] = []
    position = 0
    length = len(source)
    while position < length:
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise ParseError(
                f"unexpected character {source[position]!r}",
                position=position)
        kind = match.lastgroup
        text = match.group()
        if kind != "WS":
            if kind == "IDENT" and text in KEYWORDS:
                kind = "KEYWORD"
            tokens.append(Token(kind, text, position))
        position = match.end()
    tokens.append(Token("EOF", "", length))
    return tokens
