"""Closed intervals over the non-negative reals, used as CSRL bounds.

The paper restricts the computational procedures to downward-closed
intervals ``[0, b]`` (possibly with ``b = inf``); the data structure is
general so that formulas with arbitrary bounds can at least be
represented, printed and -- where procedures exist (the NEXT operator)
-- checked.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import FormulaError


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[lower, upper]`` with ``0 <= lower <= upper``.

    ``upper`` may be ``math.inf``.  The default instance is the trivial
    bound ``[0, inf)``, which constrains nothing.
    """

    lower: float = 0.0
    upper: float = math.inf

    def __post_init__(self):
        if math.isnan(self.lower) or math.isnan(self.upper):
            raise FormulaError("interval bounds must not be NaN")
        if self.lower < 0.0:
            raise FormulaError(
                f"interval lower bound must be >= 0, got {self.lower}")
        if self.lower > self.upper:
            raise FormulaError(
                f"empty interval [{self.lower}, {self.upper}]")
        if math.isinf(self.lower):
            raise FormulaError("interval lower bound must be finite")

    # ------------------------------------------------------------------

    @staticmethod
    def unbounded() -> "Interval":
        """The trivial interval ``[0, inf)``."""
        return Interval(0.0, math.inf)

    @staticmethod
    def upto(bound: float) -> "Interval":
        """The downward-closed interval ``[0, bound]``."""
        return Interval(0.0, float(bound))

    # ------------------------------------------------------------------

    @property
    def is_trivial(self) -> bool:
        """True for ``[0, inf)`` -- the bound constrains nothing."""
        return self.lower == 0.0 and math.isinf(self.upper)

    @property
    def is_downward_closed(self) -> bool:
        """True when the interval has the form ``[0, b]``."""
        return self.lower == 0.0

    @property
    def is_point(self) -> bool:
        """True for singleton intervals ``[b, b]``."""
        return self.lower == self.upper

    def contains(self, value: float) -> bool:
        """Membership test ``value in [lower, upper]``."""
        return self.lower <= value <= self.upper

    __contains__ = contains

    def intersect(self, other: "Interval") -> "Interval | None":
        """The intersection, or ``None`` when it is empty."""
        lower = max(self.lower, other.lower)
        upper = min(self.upper, other.upper)
        if lower > upper:
            return None
        return Interval(lower, upper)

    def scaled(self, factor: float) -> "Interval":
        """The interval with both bounds multiplied by *factor* > 0."""
        if factor <= 0.0:
            raise FormulaError("interval scale factor must be positive")
        return Interval(self.lower * factor,
                        self.upper if math.isinf(self.upper)
                        else self.upper * factor)

    def __str__(self) -> str:
        if self.is_trivial:
            return "[0,inf)"
        upper = "inf" if math.isinf(self.upper) else _fmt(self.upper)
        return f"[{_fmt(self.lower)},{upper}]"


def _fmt(value: float) -> str:
    """Render a bound without a spurious trailing ``.0``."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
