"""Abstract syntax of CSRL formulas.

Two syntactic categories, as in Section 2.2 of the paper:

* *state formulas* ``Phi ::= a | !Phi | Phi | Phi | P<|p(phi) | S<|p(Phi)``
* *path formulas* ``phi ::= X_I^J Phi | Phi U_I^J Phi``

where ``I`` is a time interval and ``J`` a reward interval.  Derived
forms (``true``, ``false``, conjunction, implication, eventually,
globally) are first-class nodes so that formulas print the way users
wrote them; the model checker normalises them away.

All nodes are immutable and structurally hashable, so formulas can be
used as dictionary keys (the checker memoises satisfaction sets per
subformula).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Tuple

from repro.errors import FormulaError
from repro.logic.intervals import Interval

#: The comparison operators allowed in probability bounds.
COMPARISONS = ("<", "<=", ">", ">=")


def _check_comparison(comparison: str) -> None:
    if comparison not in COMPARISONS:
        raise FormulaError(
            f"comparison must be one of {COMPARISONS}, got {comparison!r}")


def _check_probability(bound: float) -> None:
    if not 0.0 <= bound <= 1.0:
        raise FormulaError(f"probability bound must be in [0,1], "
                           f"got {bound}")


def compare(value: float, comparison: str, bound: float) -> bool:
    """Evaluate ``value <comparison> bound``."""
    if comparison == "<":
        return value < bound
    if comparison == "<=":
        return value <= bound
    if comparison == ">":
        return value > bound
    if comparison == ">=":
        return value >= bound
    raise FormulaError(f"unknown comparison {comparison!r}")


class Formula:
    """Common base of state and path formulas."""

    def subformulas(self) -> Iterator["Formula"]:
        """Depth-first iterator over this formula and all subformulas."""
        yield self
        for child in self.children():
            yield from child.subformulas()

    def children(self) -> Tuple["Formula", ...]:
        """Direct subformulas (overridden by composite nodes)."""
        return ()

    def atomic_propositions(self) -> "set[str]":
        """All atomic propositions mentioned anywhere in the formula."""
        return {node.name for node in self.subformulas()
                if isinstance(node, Atomic)}


class StateFormula(Formula):
    """Base class of state formulas."""

    # Operator sugar so formulas can be combined in Python directly:
    def __and__(self, other: "StateFormula") -> "And":
        return And(self, other)

    def __or__(self, other: "StateFormula") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)

    def implies(self, other: "StateFormula") -> "Implies":
        return Implies(self, other)


class PathFormula(Formula):
    """Base class of path formulas."""


# ----------------------------------------------------------------------
# state formulas
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Atomic(StateFormula):
    """An atomic proposition, e.g. ``call_idle``."""
    name: str

    def __post_init__(self):
        if not self.name or not all(
                c.isalnum() or c == "_" for c in self.name):
            raise FormulaError(
                f"invalid atomic proposition name {self.name!r}")
        if self.name[0].isdigit():
            raise FormulaError(
                f"proposition name must not start with a digit: "
                f"{self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TrueFormula(StateFormula):
    """The formula ``true`` (holds in every state)."""

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseFormula(StateFormula):
    """The formula ``false`` (holds in no state)."""

    def __str__(self) -> str:
        return "false"


#: Singleton instances for convenience.
TRUE = TrueFormula()
FALSE = FalseFormula()


@dataclass(frozen=True)
class Not(StateFormula):
    """Negation ``!Phi``."""
    operand: StateFormula

    def children(self):
        return (self.operand,)

    def __str__(self) -> str:
        return f"!{_paren(self.operand)}"


@dataclass(frozen=True)
class And(StateFormula):
    """Conjunction ``Phi & Psi`` (derived operator)."""
    left: StateFormula
    right: StateFormula

    def children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{_paren(self.left)} & {_paren(self.right)}"


@dataclass(frozen=True)
class Or(StateFormula):
    """Disjunction ``Phi | Psi``."""
    left: StateFormula
    right: StateFormula

    def children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{_paren(self.left)} | {_paren(self.right)}"


@dataclass(frozen=True)
class Implies(StateFormula):
    """Implication ``Phi => Psi`` (derived operator)."""
    left: StateFormula
    right: StateFormula

    def children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{_paren(self.left)} => {_paren(self.right)}"


@dataclass(frozen=True)
class Prob(StateFormula):
    """The probabilistic path quantifier ``P <|p [ phi ]``.

    Holds in state ``s`` iff the probability measure of the paths from
    ``s`` satisfying *path* meets ``comparison bound``.
    """
    comparison: str
    bound: float
    path: PathFormula

    def __post_init__(self):
        _check_comparison(self.comparison)
        _check_probability(self.bound)

    def children(self):
        return (self.path,)

    def __str__(self) -> str:
        return f"P{self.comparison}{_num(self.bound)} [ {self.path} ]"


@dataclass(frozen=True)
class SteadyState(StateFormula):
    """The steady-state operator ``S <|p [ Phi ]`` of CSL.

    Holds in ``s`` iff the steady-state probability of the
    *operand*-states, starting from ``s``, meets ``comparison bound``.
    (The paper omits this operator; it is included for completeness,
    with the procedure of Baier et al.)
    """
    comparison: str
    bound: float
    operand: StateFormula

    def __post_init__(self):
        _check_comparison(self.comparison)
        _check_probability(self.bound)

    def children(self):
        return (self.operand,)

    def __str__(self) -> str:
        return f"S{self.comparison}{_num(self.bound)} [ {self.operand} ]"


def _check_reward_bound(bound: float) -> None:
    if bound < 0.0:
        raise FormulaError(
            f"expected-reward bound must be >= 0, got {bound}")


class RewardQuery(Formula):
    """Base class of the argument forms of the ``R`` operator."""


@dataclass(frozen=True)
class InstantaneousReward(RewardQuery):
    """``I=t``: the expected reward rate at time ``t``."""
    time: float

    def __post_init__(self):
        if self.time < 0.0:
            raise FormulaError(f"time must be >= 0, got {self.time}")

    def __str__(self) -> str:
        from repro.logic.intervals import _fmt
        return f"I={_fmt(self.time)}"


@dataclass(frozen=True)
class CumulativeReward(RewardQuery):
    """``C<=t``: the expected reward accumulated up to time ``t``."""
    time: float

    def __post_init__(self):
        if self.time < 0.0:
            raise FormulaError(f"time must be >= 0, got {self.time}")

    def __str__(self) -> str:
        from repro.logic.intervals import _fmt
        return f"C<={_fmt(self.time)}"


@dataclass(frozen=True)
class SteadyStateReward(RewardQuery):
    """``S``: the long-run average reward rate."""

    def __str__(self) -> str:
        return "S"


@dataclass(frozen=True)
class ReachabilityReward(RewardQuery):
    """``F Phi``: the expected reward accumulated until a Phi-state is
    reached (infinite where that does not happen almost surely)."""
    operand: StateFormula

    def children(self):
        return (self.operand,)

    def __str__(self) -> str:
        return f"F {_paren(self.operand)}"


@dataclass(frozen=True)
class Reward(StateFormula):
    """The expected-reward operator ``R <|b [ query ]``.

    Not part of the paper's CSRL (it is the ``R`` operator popularised
    by PRISM); included because the classic performability first
    moments fall out of the same machinery.  Holds in state ``s`` iff
    the expected value of *query* from ``s`` meets ``comparison
    bound``.
    """
    comparison: str
    bound: float
    query: RewardQuery

    def __post_init__(self):
        _check_comparison(self.comparison)
        _check_reward_bound(self.bound)

    def children(self):
        return (self.query,)

    def __str__(self) -> str:
        return f"R{self.comparison}{_num(self.bound)} [ {self.query} ]"


# ----------------------------------------------------------------------
# path formulas
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Next(PathFormula):
    """``X_I^J Phi``: the first transition leads to a *Phi*-state, at a
    time in *time* having earned a reward in *reward*."""
    operand: StateFormula
    time: Interval = field(default_factory=Interval.unbounded)
    reward: Interval = field(default_factory=Interval.unbounded)

    def children(self):
        return (self.operand,)

    def __str__(self) -> str:
        return f"X{_bounds(self.time, self.reward)} {_paren(self.operand)}"


@dataclass(frozen=True)
class Until(PathFormula):
    """``Phi U_I^J Psi``: a *Psi*-state is reached at a time in *time*
    with accumulated reward in *reward*, with only *Phi*-states before."""
    left: StateFormula
    right: StateFormula
    time: Interval = field(default_factory=Interval.unbounded)
    reward: Interval = field(default_factory=Interval.unbounded)

    def children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return (f"{_paren(self.left)} U{_bounds(self.time, self.reward)} "
                f"{_paren(self.right)}")


@dataclass(frozen=True)
class Eventually(PathFormula):
    """``F_I^J Phi``, sugar for ``true U_I^J Phi`` (written ``<>`` in
    the paper)."""
    operand: StateFormula
    time: Interval = field(default_factory=Interval.unbounded)
    reward: Interval = field(default_factory=Interval.unbounded)

    def children(self):
        return (self.operand,)

    def as_until(self) -> Until:
        """The desugared form ``true U_I^J Phi``."""
        return Until(TRUE, self.operand, self.time, self.reward)

    def __str__(self) -> str:
        return f"F{_bounds(self.time, self.reward)} {_paren(self.operand)}"


@dataclass(frozen=True)
class Globally(PathFormula):
    """``G_I^J Phi``: *Phi* holds along the whole (bounded) prefix.

    Not primitive in CSRL; the checker handles it through the duality
    ``P>=p(G phi) = P<=1-p(F !phi)``.
    """
    operand: StateFormula
    time: Interval = field(default_factory=Interval.unbounded)
    reward: Interval = field(default_factory=Interval.unbounded)

    def children(self):
        return (self.operand,)

    def __str__(self) -> str:
        return f"G{_bounds(self.time, self.reward)} {_paren(self.operand)}"


# ----------------------------------------------------------------------
# printing helpers
# ----------------------------------------------------------------------

_ATOMIC_NODES = (Atomic, TrueFormula, FalseFormula, Not, Prob, SteadyState)


def _paren(formula: Formula) -> str:
    """Parenthesise composite operands for unambiguous printing."""
    if isinstance(formula, _ATOMIC_NODES):
        return str(formula)
    return f"({formula})"


def _num(value: float) -> str:
    if value == int(value):
        return str(value)  # keep '0.5' style floats as-is via str
    return repr(value)


def _bounds(time: Interval, reward: Interval) -> str:
    """Render the ``I``/``J`` annotations of a temporal operator.

    A trivial time interval in front of a reward bound is printed in
    the parsable form ``[0,inf]`` (the bare ``[0,inf)`` notation is for
    standalone display only).
    """
    if time.is_trivial and reward.is_trivial:
        return ""
    if reward.is_trivial:
        return str(time)
    time_text = "[0,inf]" if time.is_trivial else str(time)
    return f"{time_text}{reward}"
