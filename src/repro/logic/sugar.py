"""Convenience constructors for building CSRL formulas in Python.

These helpers mirror the notation of the paper:

>>> from repro.logic import sugar as f
>>> q3 = f.prob(">", 0.5,
...             f.until(f.ap("call_idle") | f.ap("doze"),
...                     f.ap("call_initiated"),
...                     time=24, reward=600))
>>> str(q3)
'P>0.5 [ (call_idle | doze) U[0,24][0,600] call_initiated ]'
"""

from __future__ import annotations

import math
from typing import Optional, Union

from repro.logic import ast
from repro.logic.intervals import Interval

BoundLike = Union[None, float, int, Interval]


def _interval(bound: BoundLike) -> Interval:
    """Normalise a bound specification into an :class:`Interval`.

    ``None`` means unbounded; a number ``b`` means ``[0, b]``.
    """
    if bound is None:
        return Interval.unbounded()
    if isinstance(bound, Interval):
        return bound
    return Interval.upto(float(bound))


def ap(name: str) -> ast.Atomic:
    """Atomic proposition *name*."""
    return ast.Atomic(name)


def true() -> ast.TrueFormula:
    """The formula ``true``."""
    return ast.TRUE


def false() -> ast.FalseFormula:
    """The formula ``false``."""
    return ast.FALSE


def neg(operand: ast.StateFormula) -> ast.Not:
    """Negation."""
    return ast.Not(operand)


def conj(*operands: ast.StateFormula) -> ast.StateFormula:
    """Conjunction of one or more formulas (left associated)."""
    if not operands:
        return ast.TRUE
    result = operands[0]
    for operand in operands[1:]:
        result = ast.And(result, operand)
    return result


def disj(*operands: ast.StateFormula) -> ast.StateFormula:
    """Disjunction of one or more formulas (left associated)."""
    if not operands:
        return ast.FALSE
    result = operands[0]
    for operand in operands[1:]:
        result = ast.Or(result, operand)
    return result


def prob(comparison: str, bound: float,
         path: ast.PathFormula) -> ast.Prob:
    """The probabilistic operator ``P comparison bound [ path ]``."""
    return ast.Prob(comparison, bound, path)


def steady(comparison: str, bound: float,
           operand: ast.StateFormula) -> ast.SteadyState:
    """The steady-state operator ``S comparison bound [ operand ]``."""
    return ast.SteadyState(comparison, bound, operand)


def next_(operand: ast.StateFormula,
          time: BoundLike = None,
          reward: BoundLike = None) -> ast.Next:
    """The NEXT operator ``X_I^J operand``."""
    return ast.Next(operand, _interval(time), _interval(reward))


def until(left: ast.StateFormula,
          right: ast.StateFormula,
          time: BoundLike = None,
          reward: BoundLike = None) -> ast.Until:
    """The UNTIL operator ``left U_I^J right``."""
    return ast.Until(left, right, _interval(time), _interval(reward))


def eventually(operand: ast.StateFormula,
               time: BoundLike = None,
               reward: BoundLike = None) -> ast.Eventually:
    """``F_I^J operand`` -- the paper's diamond operator."""
    return ast.Eventually(operand, _interval(time), _interval(reward))


def globally(operand: ast.StateFormula,
             time: BoundLike = None,
             reward: BoundLike = None) -> ast.Globally:
    """``G_I^J operand``."""
    return ast.Globally(operand, _interval(time), _interval(reward))
