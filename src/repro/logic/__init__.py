"""The continuous stochastic reward logic (CSRL).

This package defines the formula language of the library:

* :mod:`~repro.logic.intervals` -- closed intervals used as time and
  reward bounds;
* :mod:`~repro.logic.ast` -- the abstract syntax of CSRL state and path
  formulas (immutable, hashable, structurally comparable);
* :mod:`~repro.logic.lexer` / :mod:`~repro.logic.parser` -- a concrete
  text syntax, e.g. ``P>0.5 [ (call_idle | doze) U[0,24][0,600]
  call_initiated ]``;
* :mod:`~repro.logic.sugar` -- convenience constructors (``ap``,
  ``prob``, ``until``, ``eventually``, ...).

The grammar implemented here follows Section 2.2 of the paper, with the
steady-state operator of CSL added back in and the usual derived
operators (conjunction, implication, ``true``/``false``, eventually,
globally) as sugar.
"""

from repro.logic.intervals import Interval
from repro.logic.ast import (StateFormula, PathFormula, Atomic, TrueFormula,
                             FalseFormula, Not, And, Or, Implies, Prob,
                             SteadyState, Next, Until, Eventually, Globally,
                             TRUE, FALSE)
from repro.logic.parser import parse_formula
from repro.logic import sugar

__all__ = [
    "Interval", "StateFormula", "PathFormula", "Atomic", "TrueFormula",
    "FalseFormula", "Not", "And", "Or", "Implies", "Prob", "SteadyState",
    "Next", "Until", "Eventually", "Globally", "TRUE", "FALSE",
    "parse_formula", "sugar",
]
