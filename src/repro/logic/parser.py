"""Recursive-descent parser for the CSRL concrete syntax.

Grammar (in decreasing binding strength)::

    state    := implies
    implies  := or ( '=>' implies )?                 (right associative)
    or       := and ( ('|' | '||') and )*
    and      := unary ( ('&' | '&&') unary )*
    unary    := ('!' | '~') unary | primary
    primary  := 'true' | 'false' | IDENT
              | '(' state ')'
              | 'P' CMP NUMBER body(path)
              | 'S' CMP NUMBER body(state)
    body(x)  := '[' x ']' | '(' x ')'
    path     := 'X' bounds state
              | 'F' bounds state
              | 'G' bounds state
              | state 'U' bounds state
    bounds   := interval interval? | '<=' NUMBER | (empty)
    interval := '[' NUMBER ',' (NUMBER | 'inf') ']'

The first interval of a temporal operator is the *time* bound ``I``,
the second the *reward* bound ``J`` (as in ``U[0,24][0,600]``); the
short form ``U<=24`` abbreviates ``U[0,24]``.

Examples
--------
>>> parse_formula("P>0.5 [ (call_idle | doze) U[0,24][0,600] call_initiated ]")
... # doctest: +ELLIPSIS
Prob(...)
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.logic import ast
from repro.logic.intervals import Interval
from repro.logic.lexer import Token, tokenize


def parse_formula(source: str) -> ast.StateFormula:
    """Parse *source* into a CSRL state formula."""
    parser = _Parser(tokenize(source))
    formula = _wrap_semantic_errors(parser.parse_state)
    parser.expect("EOF")
    return formula


def parse_path_formula(source: str) -> ast.PathFormula:
    """Parse *source* into a CSRL path formula (for testing and tools)."""
    parser = _Parser(tokenize(source))
    path = _wrap_semantic_errors(parser.parse_path)
    parser.expect("EOF")
    return path


def _wrap_semantic_errors(production):
    """Re-raise node-construction errors (bad bounds, empty intervals)
    as parse errors, so callers see a single exception type."""
    from repro.errors import FormulaError
    try:
        return production()
    except ParseError:
        raise
    except FormulaError as exc:
        raise ParseError(str(exc)) from exc


class _Parser:
    """Stateful cursor over the token list."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0

    # -- token utilities ------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "EOF":
            self._index += 1
        return token

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: Optional[str] = None
               ) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.check(kind, text):
            want = text if text is not None else kind
            raise ParseError(
                f"expected {want}, found {self.current.text!r}",
                position=self.current.position)
        return self.advance()

    def fail(self, message: str) -> "ParseError":
        return ParseError(message, position=self.current.position)

    # -- state formulas ---------------------------------------------------

    def parse_state(self) -> ast.StateFormula:
        return self._parse_implies()

    def _parse_implies(self) -> ast.StateFormula:
        left = self._parse_or()
        if self.accept("IMPLIES"):
            right = self._parse_implies()
            return ast.Implies(left, right)
        return left

    def _parse_or(self) -> ast.StateFormula:
        left = self._parse_and()
        while self.accept("OR"):
            left = ast.Or(left, self._parse_and())
        return left

    def _parse_and(self) -> ast.StateFormula:
        left = self._parse_unary()
        while self.accept("AND"):
            left = ast.And(left, self._parse_unary())
        return left

    def _parse_unary(self) -> ast.StateFormula:
        if self.accept("NOT"):
            return ast.Not(self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.StateFormula:
        token = self.current
        if token.kind == "KEYWORD":
            if token.text == "true":
                self.advance()
                return ast.TRUE
            if token.text == "false":
                self.advance()
                return ast.FALSE
            if token.text == "P":
                return self._parse_prob()
            if token.text == "S":
                return self._parse_steady()
            if token.text == "R":
                return self._parse_reward()
            raise self.fail(
                f"keyword {token.text!r} cannot start a state formula")
        if token.kind == "IDENT":
            self.advance()
            return ast.Atomic(token.text)
        if self.accept("LPAREN"):
            inner = self.parse_state()
            self.expect("RPAREN")
            return inner
        raise self.fail(
            f"expected a state formula, found {token.text or 'end of input'!r}")

    def _parse_comparison_bound(self) -> Tuple[str, float]:
        comparison = self.expect("CMP").text
        bound = self._parse_number()
        return comparison, bound

    def _parse_prob(self) -> ast.Prob:
        self.expect("KEYWORD", "P")
        comparison, bound = self._parse_comparison_bound()
        open_kind = "LBRACKET" if self.check("LBRACKET") else "LPAREN"
        close_kind = "RBRACKET" if open_kind == "LBRACKET" else "RPAREN"
        self.expect(open_kind)
        path = self.parse_path()
        self.expect(close_kind)
        return ast.Prob(comparison, bound, path)

    def _parse_steady(self) -> ast.SteadyState:
        self.expect("KEYWORD", "S")
        comparison, bound = self._parse_comparison_bound()
        open_kind = "LBRACKET" if self.check("LBRACKET") else "LPAREN"
        close_kind = "RBRACKET" if open_kind == "LBRACKET" else "RPAREN"
        self.expect(open_kind)
        operand = self.parse_state()
        self.expect(close_kind)
        return ast.SteadyState(comparison, bound, operand)

    def _parse_reward(self) -> ast.Reward:
        self.expect("KEYWORD", "R")
        comparison = self.expect("CMP").text
        bound = self._parse_number()
        open_kind = "LBRACKET" if self.check("LBRACKET") else "LPAREN"
        close_kind = "RBRACKET" if open_kind == "LBRACKET" else "RPAREN"
        self.expect(open_kind)
        query = self._parse_reward_query()
        self.expect(close_kind)
        return ast.Reward(comparison, bound, query)

    def _parse_reward_query(self) -> ast.RewardQuery:
        if self.accept("KEYWORD", "I"):
            self.expect("EQ")
            return ast.InstantaneousReward(self._parse_number())
        if self.accept("KEYWORD", "C"):
            self.expect("CMP", "<=")
            return ast.CumulativeReward(self._parse_number())
        if self.accept("KEYWORD", "F"):
            return ast.ReachabilityReward(self.parse_state())
        if self.accept("KEYWORD", "S"):
            return ast.SteadyStateReward()
        raise self.fail(
            "expected a reward query: 'I=t', 'C<=t', 'F formula' "
            "or 'S'")

    # -- path formulas ----------------------------------------------------

    def parse_path(self) -> ast.PathFormula:
        token = self.current
        if token.kind == "KEYWORD" and token.text in ("X", "F", "G"):
            self.advance()
            time, reward = self._parse_bounds()
            operand = self.parse_state()
            if token.text == "X":
                return ast.Next(operand, time, reward)
            if token.text == "F":
                return ast.Eventually(operand, time, reward)
            return ast.Globally(operand, time, reward)
        left = self.parse_state()
        self.expect("KEYWORD", "U")
        time, reward = self._parse_bounds()
        right = self.parse_state()
        return ast.Until(left, right, time, reward)

    def _parse_bounds(self) -> Tuple[Interval, Interval]:
        # Short form: U<=24
        if self.check("CMP", "<="):
            self.advance()
            bound = self._parse_number()
            return Interval.upto(bound), Interval.unbounded()
        time = Interval.unbounded()
        reward = Interval.unbounded()
        if self.check("LBRACKET"):
            time = self._parse_interval()
            if self.check("LBRACKET"):
                reward = self._parse_interval()
        return time, reward

    def _parse_interval(self) -> Interval:
        self.expect("LBRACKET")
        lower = self._parse_number()
        self.expect("COMMA")
        if self.accept("KEYWORD", "inf"):
            upper = math.inf
        else:
            upper = self._parse_number()
        self.expect("RBRACKET")
        return Interval(lower, upper)

    def _parse_number(self) -> float:
        token = self.expect("NUMBER")
        try:
            return float(token.text)
        except ValueError:  # pragma: no cover - the lexer precludes this
            raise ParseError(f"malformed number {token.text!r}",
                             position=token.position) from None
