"""repro: a CSRL performability model checker for Markov reward models.

Reproduction of "Model Checking Performability Properties" (Haverkort,
Cloth, Hermanns, Katoen, Baier; DSN 2002).  The library provides:

* Markov reward models (:mod:`repro.ctmc`) and stochastic reward nets
  (:mod:`repro.srn`) as modelling front ends;
* the logic CSRL (:mod:`repro.logic`) with a text parser;
* a model checker (:mod:`repro.mc`) covering all CSRL operators, with
  three interchangeable engines for time- and reward-bounded until
  (:mod:`repro.algorithms`): pseudo-Erlang approximation, Tijms-Veldman
  discretisation and Sericola\'s occupation-time algorithm;
* a Monte-Carlo path simulator (:mod:`repro.sim`) for validation;
* the paper\'s case study (:mod:`repro.models.adhoc`).
"""

from repro.ctmc import CTMC, MarkovRewardModel, ModelBuilder
from repro.logic import parse_formula, Interval
from repro.mc import ModelChecker, CheckResult

__version__ = "1.0.0"

__all__ = [
    "CTMC", "MarkovRewardModel", "ModelBuilder",
    "parse_formula", "Interval",
    "ModelChecker", "CheckResult",
    "__version__",
]
