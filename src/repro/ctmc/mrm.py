"""Markov reward models: CTMCs with a state-based reward structure.

An MRM is a tuple ``(S, R, rho)`` where ``(S, R)`` is a CTMC and
``rho : S -> R_{>=0}`` assigns a reward *rate* to each state: a sojourn
of ``t`` time units in state ``s`` earns reward ``rho(s) * t``.  Rewards
can be read as gain/bonus or, dually, as cost (e.g. power consumption in
the paper's case study).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.ctmc.ctmc import CTMC, MatrixLike
from repro.errors import ModelError, RewardError

ImpulseLike = Union[Mapping[Tuple[int, int], float], MatrixLike, None]


class MarkovRewardModel(CTMC):
    """A CTMC extended with a non-negative state reward structure.

    Parameters
    ----------
    rates, labels, initial_distribution, state_names:
        As for :class:`~repro.ctmc.ctmc.CTMC`.
    rewards:
        Vector of reward rates, one non-negative number per state.
        Defaults to all zeros.
    impulse_rewards:
        Optional *impulse* rewards earned instantaneously when a
        transition fires: a mapping ``(source, target) -> value`` or a
        matrix.  Impulses may only sit on existing transitions.  (The
        paper's algorithms are "tailored to state-based rewards only";
        impulses are this library's implementation of its future-work
        item -- supported by the simulator, the discretisation engine
        and the pseudo-Erlang engine, rejected by the occupation-time
        engine and the duality transformation.)
    """

    def __init__(self,
                 rates: MatrixLike,
                 rewards: Optional[Sequence[float]] = None,
                 labels: Optional[Mapping[str, Iterable[int]]] = None,
                 initial_distribution: Optional[Sequence[float]] = None,
                 state_names: Optional[Sequence[str]] = None,
                 impulse_rewards: ImpulseLike = None):
        super().__init__(rates, labels=labels,
                         initial_distribution=initial_distribution,
                         state_names=state_names)
        n = self.num_states
        if rewards is None:
            rho = np.zeros(n)
        else:
            rho = np.asarray(rewards, dtype=float)
            if rho.shape != (n,):
                raise ModelError(
                    f"reward vector has shape {rho.shape}, expected ({n},)")
            if not np.all(np.isfinite(rho)):
                first = int(np.flatnonzero(~np.isfinite(rho))[0])
                kind = "NaN" if np.isnan(rho[first]) else "infinite"
                raise RewardError(
                    f"reward rates must be finite: the reward of state "
                    f"{first} is {kind}")
            if np.any(rho < 0.0):
                first = int(np.flatnonzero(rho < 0.0)[0])
                raise RewardError(
                    f"reward rates must be non-negative: the reward of "
                    f"state {first} is {rho[first]}")
        self._rewards = rho
        self._impulses = self._normalize_impulses(impulse_rewards)

    def _normalize_impulses(self, impulses: ImpulseLike
                            ) -> Optional[sp.csr_matrix]:
        if impulses is None:
            return None
        n = self.num_states
        if isinstance(impulses, Mapping):
            if not impulses:
                return None
            rows, cols, vals = [], [], []
            for (source, target), value in impulses.items():
                rows.append(int(source))
                cols.append(int(target))
                vals.append(float(value))
            matrix = sp.coo_matrix((vals, (rows, cols)),
                                   shape=(n, n)).tocsr()
        elif sp.issparse(impulses):
            matrix = impulses.tocsr().astype(float)
        else:
            matrix = sp.csr_matrix(np.asarray(impulses, dtype=float))
        if matrix.shape != (n, n):
            raise ModelError(
                f"impulse matrix has shape {matrix.shape}, "
                f"expected ({n}, {n})")
        matrix.eliminate_zeros()
        if matrix.nnz == 0:
            return None
        if not np.all(np.isfinite(matrix.data)):
            coo = matrix.tocoo()
            bad = ~np.isfinite(coo.data)
            first = int(np.flatnonzero(bad)[0])
            kind = "NaN" if np.isnan(coo.data[first]) else "infinite"
            raise RewardError(
                f"impulse rewards must be finite: the impulse on "
                f"transition ({coo.row[first]}, {coo.col[first]}) "
                f"is {kind}")
        if matrix.data.min() < 0.0:
            coo = matrix.tocoo()
            first = int(np.flatnonzero(coo.data < 0.0)[0])
            raise RewardError(
                f"impulse rewards must be non-negative: the impulse on "
                f"transition ({coo.row[first]}, {coo.col[first]}) is "
                f"{coo.data[first]}")
        # Impulses only make sense on existing transitions.
        structure = self.rate_matrix.copy()
        structure.data = np.ones_like(structure.data)
        orphaned = matrix.copy()
        orphaned.data = np.ones_like(orphaned.data)
        if (orphaned - orphaned.multiply(structure)).nnz:
            raise ModelError(
                "impulse rewards must sit on existing transitions")
        return matrix

    def _fingerprint_parts(self):
        """Extend the CTMC content hash with the reward structure."""
        yield from super()._fingerprint_parts()
        yield self._rewards.tobytes()
        if self._impulses is not None:
            yield self._impulses.indptr.tobytes()
            yield self._impulses.indices.tobytes()
            yield np.ascontiguousarray(self._impulses.data).tobytes()

    # ------------------------------------------------------------------

    @property
    def rewards(self) -> np.ndarray:
        """The reward-rate vector ``rho`` (do not mutate)."""
        return self._rewards

    def reward(self, state: int) -> float:
        """The reward rate ``rho(state)``."""
        return float(self._rewards[state])

    @property
    def max_reward(self) -> float:
        """The largest reward rate assigned to any state."""
        return float(self._rewards.max())

    def distinct_rewards(self) -> np.ndarray:
        """Sorted array of the distinct reward rates occurring in the model."""
        return np.unique(self._rewards)

    def reward_partition(self) -> "list[np.ndarray]":
        """Partition of the state space by reward level.

        Returns a list ``[B_0, ..., B_m]`` of index arrays where ``B_j``
        holds the states whose reward equals the ``j``-th smallest
        distinct reward (Sericola's notation).
        """
        levels = self.distinct_rewards()
        return [np.flatnonzero(self._rewards == level) for level in levels]

    def has_integer_rewards(self, tolerance: float = 1e-12) -> bool:
        """True when every reward rate is (numerically) a natural number."""
        return bool(np.all(np.abs(self._rewards
                                  - np.round(self._rewards)) <= tolerance))

    # ------------------------------------------------------------------
    # impulse rewards
    # ------------------------------------------------------------------

    @property
    def has_impulse_rewards(self) -> bool:
        """Whether any transition carries an impulse reward."""
        return self._impulses is not None

    @property
    def impulse_matrix(self) -> sp.csr_matrix:
        """The impulse-reward matrix (all zeros when none were set)."""
        if self._impulses is None:
            return sp.csr_matrix((self.num_states, self.num_states))
        return self._impulses

    def impulse(self, source: int, target: int) -> float:
        """The impulse reward of the transition ``source -> target``."""
        if self._impulses is None:
            return 0.0
        return float(self._impulses[source, target])

    def with_impulse_rewards(self, impulses: ImpulseLike
                             ) -> "MarkovRewardModel":
        """A copy of this model with the given impulse rewards."""
        return MarkovRewardModel(self.rate_matrix,
                                 rewards=self._rewards,
                                 labels=self.labels_as_dict(),
                                 initial_distribution=(
                                     self.initial_distribution),
                                 state_names=self.state_names,
                                 impulse_rewards=impulses)

    # ------------------------------------------------------------------
    # derived models
    # ------------------------------------------------------------------

    def as_ctmc(self) -> CTMC:
        """The underlying CTMC with the reward structure dropped."""
        return CTMC(self.rate_matrix,
                    labels=self.labels_as_dict(),
                    initial_distribution=self.initial_distribution,
                    state_names=self.state_names)

    def with_rewards(self, rewards: Sequence[float]) -> "MarkovRewardModel":
        """A copy of this model with a different rate-reward structure
        (impulse rewards are preserved)."""
        return MarkovRewardModel(self.rate_matrix,
                                 rewards=rewards,
                                 labels=self.labels_as_dict(),
                                 initial_distribution=self.initial_distribution,
                                 state_names=self.state_names,
                                 impulse_rewards=self._impulses)

    def with_initial_state(self, state: int) -> "MarkovRewardModel":
        """A copy of this model started deterministically in *state*."""
        if not 0 <= state < self.num_states:
            raise ModelError(f"state {state} out of range")
        alpha = np.zeros(self.num_states)
        alpha[state] = 1.0
        return MarkovRewardModel(self.rate_matrix,
                                 rewards=self._rewards,
                                 labels=self.labels_as_dict(),
                                 initial_distribution=alpha,
                                 state_names=self.state_names,
                                 impulse_rewards=self._impulses)

    def scaled_rewards(self, factor: float) -> "MarkovRewardModel":
        """A copy with every reward multiplied by *factor* (> 0).

        Scaling rewards by ``c`` scales accumulated reward by ``c``:
        checking a reward bound ``r`` on the original model is the same
        as checking ``c * r`` on the scaled model.  This is the standard
        trick to turn rational rewards into the natural numbers required
        by the discretisation engine.
        """
        if factor <= 0.0:
            raise RewardError("reward scale factor must be positive")
        scaled_impulses = (None if self._impulses is None
                           else self._impulses * factor)
        return MarkovRewardModel(self.rate_matrix,
                                 rewards=self._rewards * factor,
                                 labels=self.labels_as_dict(),
                                 initial_distribution=self.initial_distribution,
                                 state_names=self.state_names,
                                 impulse_rewards=scaled_impulses)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(states={self.num_states}, "
                f"transitions={self.num_transitions}, "
                f"reward_levels={len(self.distinct_rewards())})")
