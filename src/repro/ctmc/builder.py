"""Incremental construction of labelled Markov reward models.

:class:`ModelBuilder` lets models be written down state by state and
transition by transition with string names, then materialised into an
immutable :class:`~repro.ctmc.mrm.MarkovRewardModel`:

>>> builder = ModelBuilder()
>>> builder.add_state("up", labels=("operational",), reward=2.0)
0
>>> builder.add_state("down", reward=0.0)
1
>>> builder.add_transition("up", "down", 0.1)
>>> builder.add_transition("down", "up", 2.0)
>>> model = builder.build(initial_state="up")
>>> model.num_states
2
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.ctmc.mrm import MarkovRewardModel
from repro.errors import ModelError

StateRef = Union[int, str]


class ModelBuilder:
    """Mutable builder producing :class:`MarkovRewardModel` instances."""

    def __init__(self):
        self._names: List[str] = []
        self._index: Dict[str, int] = {}
        self._rewards: List[float] = []
        self._labels: Dict[str, set] = {}
        self._transitions: List[Tuple[int, int, float]] = []
        self._impulses: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------

    @property
    def num_states(self) -> int:
        """Number of states added so far."""
        return len(self._names)

    def add_state(self,
                  name: Optional[str] = None,
                  labels: Iterable[str] = (),
                  reward: float = 0.0) -> int:
        """Add a state and return its index.

        Parameters
        ----------
        name:
            Unique name; defaults to ``"s<i>"`` for index ``i``.
        labels:
            Atomic propositions holding in the new state.
        reward:
            Non-negative reward rate of the new state.
        """
        index = len(self._names)
        if name is None:
            name = f"s{index}"
        if name in self._index:
            raise ModelError(f"duplicate state name {name!r}")
        if not math.isfinite(reward):
            raise ModelError(
                f"state {name!r} has non-finite reward {reward}")
        if reward < 0.0:
            raise ModelError(f"state {name!r} has negative reward {reward}")
        self._names.append(name)
        self._index[name] = index
        self._rewards.append(float(reward))
        for ap in labels:
            self._labels.setdefault(str(ap), set()).add(index)
        return index

    def resolve(self, state: StateRef) -> int:
        """Translate a state name or index into an index."""
        if isinstance(state, str):
            try:
                return self._index[state]
            except KeyError:
                raise ModelError(f"unknown state {state!r}") from None
        index = int(state)
        if not 0 <= index < len(self._names):
            raise ModelError(f"state index {index} out of range")
        return index

    def add_transition(self, source: StateRef, target: StateRef,
                       rate: float, impulse: float = 0.0) -> None:
        """Add a transition; parallel transitions accumulate their rates.

        *impulse* is an instantaneous reward earned when the transition
        fires.  Parallel transitions between the same pair of states
        must agree on their impulse (a merged CTMC transition can only
        carry one).
        """
        if not math.isfinite(rate):
            raise ModelError(
                f"non-finite rate {rate} on the transition "
                f"{source!r} -> {target!r}")
        if rate < 0.0:
            raise ModelError(f"negative transition rate {rate}")
        if not math.isfinite(impulse):
            raise ModelError(
                f"non-finite impulse reward {impulse} on the "
                f"transition {source!r} -> {target!r}")
        if impulse < 0.0:
            raise ModelError(f"negative impulse reward {impulse}")
        if rate == 0.0:
            return
        key = (self.resolve(source), self.resolve(target))
        self._transitions.append((key[0], key[1], float(rate)))
        existing = self._impulses.get(key)
        if existing is not None and existing != float(impulse):
            raise ModelError(
                f"conflicting impulse rewards ({existing} vs {impulse}) "
                f"on the transition {source!r} -> {target!r}")
        if impulse > 0.0:
            self._impulses[key] = float(impulse)

    def add_label(self, state: StateRef, ap: str) -> None:
        """Attach atomic proposition *ap* to an existing state."""
        self._labels.setdefault(str(ap), set()).add(self.resolve(state))

    def set_reward(self, state: StateRef, reward: float) -> None:
        """Overwrite the reward rate of an existing state."""
        if not math.isfinite(reward):
            raise ModelError(
                f"non-finite reward {reward} for state {state!r}")
        if reward < 0.0:
            raise ModelError(f"negative reward {reward}")
        self._rewards[self.resolve(state)] = float(reward)

    # ------------------------------------------------------------------

    def build(self,
              initial_state: Optional[StateRef] = None,
              initial_distribution: Optional[Iterable[float]] = None
              ) -> MarkovRewardModel:
        """Materialise the model built so far.

        Exactly one of *initial_state* and *initial_distribution* may be
        given; the default is a point mass on state 0.
        """
        n = len(self._names)
        if n == 0:
            raise ModelError("cannot build a model with no states")
        if initial_state is not None and initial_distribution is not None:
            raise ModelError(
                "give either initial_state or initial_distribution, not both")

        if self._transitions:
            rows, cols, vals = zip(*self._transitions)
            rates = sp.coo_matrix((vals, (rows, cols)),
                                  shape=(n, n)).tocsr()
            rates.sum_duplicates()
        else:
            rates = sp.csr_matrix((n, n))

        alpha: Optional[np.ndarray]
        if initial_state is not None:
            alpha = np.zeros(n)
            alpha[self.resolve(initial_state)] = 1.0
        elif initial_distribution is not None:
            alpha = np.asarray(list(initial_distribution), dtype=float)
        else:
            alpha = None

        return MarkovRewardModel(rates,
                                 rewards=self._rewards,
                                 labels=self._labels,
                                 initial_distribution=alpha,
                                 state_names=self._names,
                                 impulse_rewards=self._impulses or None)
