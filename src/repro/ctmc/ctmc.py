"""Labelled continuous-time Markov chains.

A CTMC is given by a finite state space ``{0, ..., n-1}``, a rate matrix
``R`` with non-negative off-diagonal entries (``R[s, s']`` is the rate of
moving from ``s`` to ``s'``), a labelling of states with atomic
propositions, and an initial probability distribution.

Following the paper, we work with the rate matrix ``R`` and exit-rate
vector ``E(s) = sum_{s'} R(s, s')`` rather than with the infinitesimal
generator ``Q``; the two are related by ``Q = R - diag(E)``.  Self-loops
are permitted in ``R`` (they are meaningful for the logic's NEXT
operator and for uniformisation) although most models have none.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Union

import numpy as np
import scipy.sparse as sp

from repro.errors import ModelError

MatrixLike = Union[np.ndarray, sp.spmatrix, Sequence[Sequence[float]]]


def _as_csr(rates: MatrixLike) -> sp.csr_matrix:
    """Convert *rates* to a validated CSR matrix with explicit zeros pruned."""
    if sp.issparse(rates):
        matrix = rates.tocsr().astype(float)
    else:
        matrix = sp.csr_matrix(np.asarray(rates, dtype=float))
    if matrix.shape[0] != matrix.shape[1]:
        raise ModelError(
            f"rate matrix must be square, got shape {matrix.shape}")
    matrix.eliminate_zeros()
    if matrix.nnz:
        data = matrix.data
        if not np.all(np.isfinite(data)):
            coo = matrix.tocoo()
            bad = ~np.isfinite(coo.data)
            first = int(np.flatnonzero(bad)[0])
            kind = "NaN" if np.isnan(coo.data[first]) else "infinite"
            count = int(bad.sum())
            extra = (f" ({count} non-finite entries in total)"
                     if count > 1 else "")
            raise ModelError(
                f"rate matrix entries must be finite: entry "
                f"({coo.row[first]}, {coo.col[first]}) is {kind}{extra}")
        if data.min() < 0.0:
            coo = matrix.tocoo()
            negative = coo.data < 0.0
            if np.all(coo.row[negative] == coo.col[negative]):
                raise ModelError(
                    "rate matrix entries must be non-negative; the "
                    "negative entries all sit on the diagonal, which "
                    "suggests a generator matrix Q was passed -- pass "
                    "the rate matrix R (Q = R - diag(E)) instead")
            first = int(np.flatnonzero(negative)[0])
            raise ModelError(
                f"rate matrix entries must be non-negative: entry "
                f"({coo.row[first]}, {coo.col[first]}) is "
                f"{coo.data[first]}")
    return matrix


class CTMC:
    """A finite, labelled continuous-time Markov chain.

    Parameters
    ----------
    rates:
        Square matrix of transition rates; entry ``(s, s')`` is the rate
        of the transition from state ``s`` to state ``s'``.  Dense
        arrays, nested sequences and scipy sparse matrices are accepted.
    labels:
        Mapping from atomic proposition name to the collection of state
        indices in which the proposition holds.
    initial_distribution:
        Initial probability vector ``alpha``; defaults to a point mass
        on state 0.
    state_names:
        Optional human-readable names, one per state.
    """

    def __init__(self,
                 rates: MatrixLike,
                 labels: Optional[Mapping[str, Iterable[int]]] = None,
                 initial_distribution: Optional[Sequence[float]] = None,
                 state_names: Optional[Sequence[str]] = None):
        self._rates = _as_csr(rates)
        n = self._rates.shape[0]
        if n == 0:
            raise ModelError("a CTMC needs at least one state")

        self._labels: Dict[str, FrozenSet[int]] = {}
        for ap, states in (labels or {}).items():
            state_set = frozenset(int(s) for s in states)
            for s in state_set:
                if not 0 <= s < n:
                    raise ModelError(
                        f"label {ap!r} refers to state {s}, "
                        f"but the chain has {n} states")
            self._labels[str(ap)] = state_set

        if initial_distribution is None:
            alpha = np.zeros(n)
            alpha[0] = 1.0
        else:
            alpha = np.asarray(initial_distribution, dtype=float)
            if alpha.shape != (n,):
                raise ModelError(
                    f"initial distribution has shape {alpha.shape}, "
                    f"expected ({n},)")
            if not np.all(np.isfinite(alpha)):
                raise ModelError(
                    "initial distribution must be finite "
                    "(it contains NaN or infinite entries)")
            if np.any(alpha < 0.0):
                raise ModelError("initial distribution must be non-negative")
            total = alpha.sum()
            if not np.isclose(total, 1.0, atol=1e-9):
                raise ModelError(
                    f"initial distribution sums to {total}, expected 1")
        self._alpha = alpha

        if state_names is not None:
            names = [str(name) for name in state_names]
            if len(names) != n:
                raise ModelError(
                    f"{len(names)} state names given for {n} states")
            if len(set(names)) != len(names):
                raise ModelError("state names must be unique")
            self._state_names: Optional[List[str]] = names
            self._name_index = {name: i for i, name in enumerate(names)}
        else:
            self._state_names = None
            self._name_index = {}

        self._exit_rates = np.asarray(
            self._rates.sum(axis=1)).ravel()
        # Lazily computed content hash and derived-matrix cache; both
        # are per-instance and rely on the documented immutability of
        # the model (every "mutator" returns a fresh copy).
        self._fingerprint: Optional[str] = None
        self._derived: Dict = {}

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------

    @property
    def num_states(self) -> int:
        """Number of states of the chain."""
        return self._rates.shape[0]

    @property
    def num_transitions(self) -> int:
        """Number of transitions (non-zero rate entries)."""
        return self._rates.nnz

    @property
    def rate_matrix(self) -> sp.csr_matrix:
        """The rate matrix ``R`` as a CSR matrix (do not mutate)."""
        return self._rates

    @property
    def exit_rates(self) -> np.ndarray:
        """Vector ``E`` with ``E[s] = sum_{s'} R[s, s']``."""
        return self._exit_rates

    @property
    def max_exit_rate(self) -> float:
        """The largest exit rate, a valid uniformisation rate."""
        return float(self._exit_rates.max())

    @property
    def initial_distribution(self) -> np.ndarray:
        """The initial probability vector ``alpha`` (do not mutate)."""
        return self._alpha

    @property
    def state_names(self) -> Optional[List[str]]:
        """Optional list of state names (``None`` when unnamed)."""
        return list(self._state_names) if self._state_names else None

    def name_of(self, state: int) -> str:
        """Return the name of *state* (its index as a string if unnamed)."""
        if self._state_names is not None:
            return self._state_names[state]
        return str(state)

    def state_index(self, name: str) -> int:
        """Return the index of the state called *name*.

        Raises :class:`~repro.errors.ModelError` if no such state exists.
        """
        try:
            return self._name_index[name]
        except KeyError:
            raise ModelError(f"no state named {name!r}") from None

    def rate(self, source: int, target: int) -> float:
        """The transition rate ``R[source, target]``."""
        return float(self._rates[source, target])

    def successors(self, state: int) -> List[int]:
        """Indices of states reachable from *state* in one transition."""
        row = self._rates.getrow(state)
        return list(row.indices)

    def is_absorbing(self, state: int) -> bool:
        """True when *state* has no outgoing transitions."""
        return bool(self._exit_rates[state] == 0.0)

    # ------------------------------------------------------------------
    # content identity and derived-matrix caches
    # ------------------------------------------------------------------

    def _fingerprint_parts(self) -> Iterator[bytes]:
        """Byte chunks feeding the content hash (extended by subclasses).

        Covers everything the numerical procedures read: the rate
        matrix and the initial distribution.  Labels and state names
        are deliberately excluded -- they never influence a numerical
        result, so models differing only in labelling share caches.
        """
        yield np.int64(self._rates.shape[0]).tobytes()
        yield self._rates.indptr.tobytes()
        yield self._rates.indices.tobytes()
        yield np.ascontiguousarray(self._rates.data).tobytes()
        yield self._alpha.tobytes()

    @property
    def fingerprint(self) -> str:
        """A cheap content hash identifying this model for caching.

        Two models with identical rates, initial distribution and (for
        MRMs) reward structure share the fingerprint, however they were
        constructed.  The model classes are immutable value objects --
        every transformation (:meth:`~repro.ctmc.mrm.MarkovRewardModel.\
with_rewards`, reductions, ...) returns a *new* instance, which gets a
        new fingerprint -- so a fingerprint, once computed, stays valid
        for the object's lifetime.
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=16)
            for part in self._fingerprint_parts():
                digest.update(part)
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    @property
    def rate_matrix_transposed(self) -> sp.csr_matrix:
        """``R^T`` as CSR (cached; do not mutate).

        The forward-propagation engines multiply by the transpose on
        every step; converting once per model instead of once per call
        is part of the engine-level caching layer.
        """
        cached = self._derived.get("RT")
        if cached is None:
            cached = self._rates.transpose().tocsr()
            self._derived["RT"] = cached
        return cached

    @property
    def rate_matrix_csc(self) -> sp.csc_matrix:
        """The rate matrix in CSC layout (cached; do not mutate)."""
        cached = self._derived.get("Rcsc")
        if cached is None:
            cached = self._rates.tocsc()
            self._derived["Rcsc"] = cached
        return cached

    def generator_matrix(self) -> sp.csr_matrix:
        """The infinitesimal generator ``Q = R - diag(E)`` (cached)."""
        cached = self._derived.get("Q")
        if cached is None:
            cached = (self._rates
                      - sp.diags(self._exit_rates, format="csr")).tocsr()
            self._derived["Q"] = cached
        return cached

    def uniformized_dtmc_matrix(self, rate: Optional[float] = None
                                ) -> sp.csr_matrix:
        """The uniformised DTMC matrix ``P = I + Q / rate``.

        Parameters
        ----------
        rate:
            Uniformisation rate; must be at least :attr:`max_exit_rate`.
            Defaults to :attr:`max_exit_rate` itself (or 1.0 for a chain
            with no transitions, where any positive rate yields ``P = I``).
        """
        if rate is None:
            rate = self.max_exit_rate or 1.0
        if rate <= 0.0:
            raise ModelError("uniformisation rate must be positive")
        if rate < self.max_exit_rate - 1e-12 * max(1.0, self.max_exit_rate):
            raise ModelError(
                f"uniformisation rate {rate} is below the maximal exit "
                f"rate {self.max_exit_rate}")
        cached = self._derived.get(("P", float(rate)))
        if cached is not None:
            return cached
        probs = self._rates / rate
        stay = 1.0 - self._exit_rates / rate
        # Clamp tiny negative values caused by rounding.
        stay = np.where(np.abs(stay) < 1e-14, 0.0, stay)
        matrix = (probs + sp.diags(stay, format="csr")).tocsr()
        self._derived[("P", float(rate))] = matrix
        return matrix

    # ------------------------------------------------------------------
    # labelling
    # ------------------------------------------------------------------

    @property
    def atomic_propositions(self) -> List[str]:
        """Sorted list of atomic propositions used in the labelling."""
        return sorted(self._labels)

    def states_with(self, ap: str) -> FrozenSet[int]:
        """The set of states labelled with atomic proposition *ap*.

        An unknown proposition denotes the empty set (it holds nowhere),
        which matches the logic's semantics.
        """
        return self._labels.get(ap, frozenset())

    def labels_of(self, state: int) -> Set[str]:
        """The set of atomic propositions holding in *state*."""
        return {ap for ap, states in self._labels.items() if state in states}

    def labels_as_dict(self) -> Dict[str, FrozenSet[int]]:
        """A copy of the full labelling (proposition -> state set)."""
        return dict(self._labels)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(states={self.num_states}, "
                f"transitions={self.num_transitions}, "
                f"propositions={len(self._labels)})")
