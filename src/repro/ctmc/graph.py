"""Qualitative graph analyses on the transition structure of a CTMC.

These routines ignore rates and only use the adjacency structure.  They
provide the precomputation steps used by the model checker:

* :func:`reachable` -- forward reachability;
* :func:`backward_reachable` -- backward reachability, optionally
  restricted to a set of allowed intermediate states;
* :func:`strongly_connected_components` / :func:`bottom_sccs` --
  Tarjan's algorithm (iterative) and the bottom SCCs, which for a CTMC
  are exactly its recurrence classes;
* :func:`prob0_states` / :func:`prob1_states` -- the states for which an
  (unbounded) until formula holds with probability exactly 0 or 1.

All functions accept any object with a scipy CSR ``indptr`` /
``indices`` pair; a :class:`~repro.ctmc.ctmc.CTMC` can be passed
directly (its rate matrix is used).
"""

from __future__ import annotations

from typing import Iterable, List, Set

import numpy as np
import scipy.sparse as sp

from repro.ctmc.ctmc import CTMC


def _adjacency(model) -> sp.csr_matrix:
    """Extract a CSR adjacency matrix from a model or matrix."""
    if isinstance(model, CTMC):
        return model.rate_matrix
    if sp.issparse(model):
        return model.tocsr()
    return sp.csr_matrix(np.asarray(model))


def reachable(model, sources: Iterable[int]) -> Set[int]:
    """States reachable from any state in *sources* (inclusive)."""
    adj = _adjacency(model)
    indptr, indices = adj.indptr, adj.indices
    seen = set(int(s) for s in sources)
    stack = list(seen)
    while stack:
        s = stack.pop()
        for t in indices[indptr[s]:indptr[s + 1]]:
            t = int(t)
            if t not in seen:
                seen.add(t)
                stack.append(t)
    return seen


def backward_reachable(model,
                       targets: Iterable[int],
                       through: "Set[int] | None" = None) -> Set[int]:
    """States that can reach *targets* (inclusive).

    When *through* is given, only paths whose intermediate states (all
    states before the target, including the start) lie in *through* are
    considered; target states themselves are always included.
    """
    adj = _adjacency(model).tocsc()
    indptr, indices = adj.indptr, adj.indices
    seen = set(int(t) for t in targets)
    stack = list(seen)
    while stack:
        s = stack.pop()
        for p in indices[indptr[s]:indptr[s + 1]]:
            p = int(p)
            if p in seen:
                continue
            if through is not None and p not in through:
                continue
            seen.add(p)
            stack.append(p)
    return seen


def strongly_connected_components(model) -> List[Set[int]]:
    """All SCCs of the transition graph (iterative Tarjan).

    Returned in reverse topological order (every edge leaving an SCC
    goes to an SCC that appears *earlier* in the list).
    """
    adj = _adjacency(model)
    indptr, indices = adj.indptr, adj.indices
    n = adj.shape[0]

    index_counter = 0
    indexes = np.full(n, -1, dtype=np.int64)
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    stack: List[int] = []
    components: List[Set[int]] = []

    for root in range(n):
        if indexes[root] != -1:
            continue
        # Iterative DFS: work items are (node, iterator position).
        work = [(root, indptr[root])]
        indexes[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, ptr = work[-1]
            if ptr < indptr[node + 1]:
                work[-1] = (node, ptr + 1)
                succ = int(indices[ptr])
                if indexes[succ] == -1:
                    indexes[succ] = lowlink[succ] = index_counter
                    index_counter += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, indptr[succ]))
                elif on_stack[succ]:
                    lowlink[node] = min(lowlink[node], indexes[succ])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == indexes[node]:
                    component: Set[int] = set()
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.add(member)
                        if member == node:
                            break
                    components.append(component)
    return components


def bottom_sccs(model) -> List[Set[int]]:
    """The bottom SCCs (no edge leaves them): the recurrence classes."""
    adj = _adjacency(model)
    indptr, indices = adj.indptr, adj.indices
    bottoms = []
    for component in strongly_connected_components(model):
        is_bottom = True
        for s in component:
            for t in indices[indptr[s]:indptr[s + 1]]:
                if int(t) not in component:
                    is_bottom = False
                    break
            if not is_bottom:
                break
        if is_bottom:
            bottoms.append(component)
    return bottoms


def prob0_states(model, phi: Set[int], psi: Set[int]) -> Set[int]:
    """States where ``P(phi U psi) = 0``.

    These are the states from which no psi-state can be reached along
    phi-states; identifying them lets the numerical until procedures
    skip work and, crucially, makes the linear system non-singular.
    """
    can_reach = backward_reachable(model, psi, through=phi)
    return set(range(_adjacency(model).shape[0])) - can_reach


def prob1_states(model, phi: Set[int], psi: Set[int]) -> Set[int]:
    """States where ``P(phi U psi) = 1``.

    Standard CTL-style fixpoint: iteratively remove states that can
    reach, via phi-states, a state with until-probability zero.  (For a
    CTMC every non-absorbing fair path eventually leaves any transient
    set, so the qualitative DTMC characterisation applies.)
    """
    n = _adjacency(model).shape[0]
    prob0 = prob0_states(model, phi, psi)
    # States that can reach prob0 through phi\psi states, i.e. states
    # with until-probability < 1.
    through = (phi - psi) - prob0
    less_than_one = backward_reachable(model, prob0, through=through)
    return set(range(n)) - less_than_one
