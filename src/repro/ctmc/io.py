"""Reading and writing MRMC-style model files.

The library uses the plain-text exchange format of the Markov Reward
Model Checker (MRMC), which is also emitted by PRISM's export commands:

``.tra`` (transitions)::

    STATES 3
    TRANSITIONS 4
    1 2 0.5
    2 1 2.0
    ...

``.lab`` (state labelling)::

    #DECLARATION
    green red
    #END
    1 green
    2 green red

``.rew`` (state rewards)::

    1 100
    3 20

All state indices in the files are 1-based (as in MRMC); in memory the
library is 0-based.  States without a ``.rew`` line have reward 0.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Set, TextIO, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.ctmc.ctmc import CTMC
from repro.ctmc.mrm import MarkovRewardModel
from repro.errors import ModelError

PathLike = Union[str, os.PathLike]


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------

def read_tra(path: PathLike) -> sp.csr_matrix:
    """Read a ``.tra`` file and return the rate matrix."""
    with open(path) as handle:
        return _read_tra_stream(handle, str(path))


def _read_tra_stream(handle: TextIO, origin: str) -> sp.csr_matrix:
    header: Dict[str, int] = {}
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    for lineno, raw in enumerate(handle, start=1):
        line = raw.strip()
        if not line or line.startswith("%") or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0].upper() in ("STATES", "TRANSITIONS"):
            if len(parts) != 2:
                raise ModelError(
                    f"{origin}:{lineno}: malformed header line {line!r}")
            header[parts[0].upper()] = int(parts[1])
            continue
        if len(parts) != 3:
            raise ModelError(
                f"{origin}:{lineno}: expected 'src dst rate', got {line!r}")
        rows.append(int(parts[0]) - 1)
        cols.append(int(parts[1]) - 1)
        vals.append(float(parts[2]))
    if "STATES" not in header:
        raise ModelError(f"{origin}: missing STATES header")
    n = header["STATES"]
    if "TRANSITIONS" in header and header["TRANSITIONS"] != len(vals):
        raise ModelError(
            f"{origin}: header promises {header['TRANSITIONS']} transitions "
            f"but {len(vals)} were found")
    for r, c in zip(rows, cols):
        if not (0 <= r < n and 0 <= c < n):
            raise ModelError(
                f"{origin}: transition ({r + 1}, {c + 1}) outside the "
                f"{n}-state space")
    matrix = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    matrix.sum_duplicates()
    return matrix


def read_lab(path: PathLike, num_states: int) -> Dict[str, Set[int]]:
    """Read a ``.lab`` file and return the labelling map."""
    labels: Dict[str, Set[int]] = {}
    declared: Optional[List[str]] = None
    in_declaration = False
    with open(path) as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.upper() == "#DECLARATION":
                in_declaration = True
                declared = []
                continue
            if line.upper() == "#END":
                in_declaration = False
                continue
            if in_declaration:
                declared.extend(line.split())
                continue
            parts = line.split()
            state = int(parts[0]) - 1
            if not 0 <= state < num_states:
                raise ModelError(
                    f"{path}:{lineno}: state {parts[0]} outside the "
                    f"{num_states}-state space")
            for ap in parts[1:]:
                if declared is not None and ap not in declared:
                    raise ModelError(
                        f"{path}:{lineno}: proposition {ap!r} not declared")
                labels.setdefault(ap, set()).add(state)
    if declared is not None:
        for ap in declared:
            labels.setdefault(ap, set())
    return labels


def read_rew(path: PathLike, num_states: int) -> np.ndarray:
    """Read a ``.rew`` file and return the reward vector."""
    rewards = np.zeros(num_states)
    with open(path) as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("%") or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ModelError(
                    f"{path}:{lineno}: expected 'state reward', "
                    f"got {line!r}")
            state = int(parts[0]) - 1
            if not 0 <= state < num_states:
                raise ModelError(
                    f"{path}:{lineno}: state {parts[0]} outside the "
                    f"{num_states}-state space")
            rewards[state] = float(parts[1])
    return rewards


def read_rewi(path: PathLike, num_states: int) -> Dict[Tuple[int, int],
                                                       float]:
    """Read a ``.rewi`` (transition/impulse rewards) file.

    Lines have the form ``source target reward`` with 1-based indices,
    as in MRMC's impulse-reward format.
    """
    impulses: Dict[Tuple[int, int], float] = {}
    with open(path) as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("%") or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3:
                raise ModelError(
                    f"{path}:{lineno}: expected 'src dst reward', "
                    f"got {line!r}")
            source, target = int(parts[0]) - 1, int(parts[1]) - 1
            for state in (source, target):
                if not 0 <= state < num_states:
                    raise ModelError(
                        f"{path}:{lineno}: state {state + 1} outside "
                        f"the {num_states}-state space")
            impulses[(source, target)] = float(parts[2])
    return impulses


def load_mrm(base: PathLike,
             initial_state: int = 0) -> MarkovRewardModel:
    """Load ``<base>.tra`` (+ optional ``.lab``, ``.rew``, ``.rewi``)
    as an MRM.

    Parameters
    ----------
    base:
        Path without extension; ``base + ".tra"`` must exist, the
        labelling / state-reward / impulse-reward files are optional.
    initial_state:
        0-based index of the initial state (the file format carries no
        initial distribution).
    """
    base = str(base)
    rates = read_tra(base + ".tra")
    n = rates.shape[0]
    labels = (read_lab(base + ".lab", n)
              if os.path.exists(base + ".lab") else {})
    rewards = (read_rew(base + ".rew", n)
               if os.path.exists(base + ".rew") else None)
    impulses = (read_rewi(base + ".rewi", n)
                if os.path.exists(base + ".rewi") else None)
    alpha = np.zeros(n)
    if not 0 <= initial_state < n:
        raise ModelError(f"initial state {initial_state} out of range")
    alpha[initial_state] = 1.0
    return MarkovRewardModel(rates, rewards=rewards, labels=labels,
                             initial_distribution=alpha,
                             impulse_rewards=impulses)


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------

def write_tra(model: CTMC, path: PathLike) -> None:
    """Write the rate matrix of *model* as a ``.tra`` file."""
    matrix = model.rate_matrix.tocoo()
    with open(path, "w") as handle:
        handle.write(f"STATES {model.num_states}\n")
        handle.write(f"TRANSITIONS {matrix.nnz}\n")
        order = np.lexsort((matrix.col, matrix.row))
        for k in order:
            handle.write(f"{matrix.row[k] + 1} {matrix.col[k] + 1} "
                         f"{float(matrix.data[k])!r}\n")


def write_lab(model: CTMC, path: PathLike) -> None:
    """Write the labelling of *model* as a ``.lab`` file."""
    props = model.atomic_propositions
    per_state: List[List[str]] = [[] for _ in range(model.num_states)]
    for ap in props:
        for state in sorted(model.states_with(ap)):
            per_state[state].append(ap)
    with open(path, "w") as handle:
        handle.write("#DECLARATION\n")
        handle.write(" ".join(props) + "\n")
        handle.write("#END\n")
        for state, aps in enumerate(per_state):
            if aps:
                handle.write(f"{state + 1} " + " ".join(aps) + "\n")


def write_rew(model: MarkovRewardModel, path: PathLike) -> None:
    """Write the reward structure of *model* as a ``.rew`` file."""
    with open(path, "w") as handle:
        for state, reward in enumerate(model.rewards):
            if reward != 0.0:
                handle.write(f"{state + 1} {float(reward)!r}\n")


def write_rewi(model: MarkovRewardModel, path: PathLike) -> None:
    """Write the impulse rewards of *model* as a ``.rewi`` file."""
    impulses = model.impulse_matrix.tocoo()
    with open(path, "w") as handle:
        order = np.lexsort((impulses.col, impulses.row))
        for k in order:
            handle.write(f"{impulses.row[k] + 1} {impulses.col[k] + 1} "
                         f"{float(impulses.data[k])!r}\n")


def save_mrm(model: MarkovRewardModel, base: PathLike) -> None:
    """Write ``<base>.tra``, ``.lab``, ``.rew`` (and ``.rewi`` when the
    model has impulse rewards)."""
    base = str(base)
    write_tra(model, base + ".tra")
    write_lab(model, base + ".lab")
    write_rew(model, base + ".rew")
    if model.has_impulse_rewards:
        write_rewi(model, base + ".rewi")
