"""Ordinary lumpability (strong bisimulation) for Markov reward models.

Two states are bisimilar when they carry the same atomic propositions
and the same reward rate, and have identical cumulative rates into
every equivalence class.  The quotient MRM is equivalent for all CSRL
formulas over the preserved propositions, so checking can run on the
(often much smaller) lumped model -- the standard state-space
reduction of CSL/CSRL checkers such as MRMC.

The partition-refinement algorithm here is the classic
split-until-stable scheme: start from the partition induced by
(labels, reward), then repeatedly split blocks whose members differ in
their total rate into some block, until no splitter exists.  With
hashing on rate signatures each pass is O(|S| + nnz); the number of
passes is bounded by the number of blocks produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.ctmc.mrm import MarkovRewardModel
from repro.errors import ModelError


@dataclass(frozen=True)
class Lumping:
    """Result of :func:`lump`.

    Attributes
    ----------
    quotient:
        The lumped MRM; state ``b`` represents block ``b``.
    block_of:
        Array mapping each original state to its block index.
    blocks:
        For each block, the sorted list of original member states.
    """
    quotient: MarkovRewardModel
    block_of: np.ndarray
    blocks: List[List[int]]

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def lift(self, block_vector: Sequence[float]) -> np.ndarray:
        """Expand a per-block vector to a per-original-state vector."""
        values = np.asarray(block_vector, dtype=float)
        return values[self.block_of]

    def lift_set(self, block_set) -> "frozenset[int]":
        """Expand a set of block indices to original state indices."""
        members: List[int] = []
        for block in block_set:
            members.extend(self.blocks[block])
        return frozenset(members)


def _initial_partition(model: MarkovRewardModel,
                       respect_labels: Optional[Sequence[str]]
                       ) -> np.ndarray:
    """Partition by (labelling restricted to *respect_labels*, reward)."""
    if respect_labels is None:
        respect_labels = model.atomic_propositions
    signatures: Dict[Tuple, int] = {}
    block_of = np.zeros(model.num_states, dtype=np.int64)
    for s in range(model.num_states):
        signature = (tuple(sorted(ap for ap in respect_labels
                                  if s in model.states_with(ap))),
                     float(model.reward(s)))
        block_of[s] = signatures.setdefault(signature, len(signatures))
    return block_of


def lump(model: MarkovRewardModel,
         respect_labels: Optional[Sequence[str]] = None,
         respect_initial: bool = True,
         tolerance: float = 1e-12) -> Lumping:
    """Compute the coarsest ordinary lumping of *model*.

    Parameters
    ----------
    model:
        The MRM to minimise.
    respect_labels:
        Atomic propositions that must be preserved (default: all).
        Propositions not listed are dropped from the quotient.
    respect_initial:
        Additionally separate states by their initial probability, so
        the quotient carries a well-defined initial distribution.
        (Without this, states with different initial mass may merge
        and only per-state results remain meaningful.)
    tolerance:
        Rates whose difference is below *tolerance* count as equal.
    """
    n = model.num_states
    if respect_labels is None:
        respect_labels = model.atomic_propositions
    block_of = _initial_partition(model, respect_labels)
    if respect_initial:
        refinement: Dict[Tuple, int] = {}
        refined = np.zeros(n, dtype=np.int64)
        for s in range(n):
            key = (int(block_of[s]),
                   round(float(model.initial_distribution[s]) /
                         max(tolerance, 1e-30)))
            refined[s] = refinement.setdefault(key, len(refinement))
        block_of = refined

    matrix = model.rate_matrix
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data

    # Refine until stable: signature of s = multiset of
    # (block(target), total rate into that block).
    while True:
        signatures: Dict[Tuple, int] = {}
        refined = np.zeros(n, dtype=np.int64)
        for s in range(n):
            into: Dict[int, float] = {}
            for ptr in range(indptr[s], indptr[s + 1]):
                target_block = int(block_of[indices[ptr]])
                into[target_block] = into.get(target_block, 0.0) \
                    + float(data[ptr])
            rate_signature = tuple(sorted(
                (block, round(rate / tolerance))
                for block, rate in into.items()))
            key = (int(block_of[s]), rate_signature)
            refined[s] = signatures.setdefault(key, len(signatures))
        if len(signatures) == len(np.unique(block_of)):
            break
        block_of = refined

    # Canonicalise block numbering by smallest member state.
    order = {}
    for s in range(n):
        order.setdefault(int(block_of[s]), s)
    ranked = sorted(order, key=order.get)
    renumber = {old: new for new, old in enumerate(ranked)}
    block_of = np.array([renumber[int(b)] for b in block_of],
                        dtype=np.int64)

    blocks: List[List[int]] = [[] for _ in range(len(ranked))]
    for s in range(n):
        blocks[block_of[s]].append(s)

    quotient = _build_quotient(model, block_of, blocks, respect_labels)
    return Lumping(quotient=quotient, block_of=block_of, blocks=blocks)


def _build_quotient(model: MarkovRewardModel,
                    block_of: np.ndarray,
                    blocks: List[List[int]],
                    respect_labels: Sequence[str]) -> MarkovRewardModel:
    k = len(blocks)
    representatives = [members[0] for members in blocks]

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    matrix = model.rate_matrix
    for b, representative in enumerate(representatives):
        row = matrix.getrow(representative)
        into: Dict[int, float] = {}
        for target, rate in zip(row.indices, row.data):
            target_block = int(block_of[target])
            into[target_block] = into.get(target_block, 0.0) + float(rate)
        for target_block, rate in into.items():
            rows.append(b)
            cols.append(target_block)
            vals.append(rate)
    rates = sp.coo_matrix((vals, (rows, cols)), shape=(k, k)).tocsr()

    rewards = [model.reward(representative)
               for representative in representatives]
    alpha = np.zeros(k)
    for s, mass in enumerate(model.initial_distribution):
        alpha[block_of[s]] += mass
    if not np.isclose(alpha.sum(), 1.0):
        raise ModelError("lumping lost initial probability mass")

    labels = {ap: {int(block_of[s]) for s in model.states_with(ap)
                   if ap in respect_labels}
              for ap in respect_labels}
    names = None
    if model.state_names is not None:
        names = ["{" + "+".join(model.name_of(s) for s in members[:3])
                 + ("+..." if len(members) > 3 else "") + "}"
                 for members in blocks]
        if len(set(names)) != len(names):
            names = [f"{name}#{i}" for i, name in enumerate(names)]
    return MarkovRewardModel(rates, rewards=rewards, labels=labels,
                             initial_distribution=alpha,
                             state_names=names)
