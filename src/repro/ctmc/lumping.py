"""Ordinary lumpability (strong bisimulation) for Markov reward models.

Two states are bisimilar when they carry the same atomic propositions
and the same reward rate, and have identical cumulative rates into
every equivalence class.  The quotient MRM is equivalent for all CSRL
formulas over the preserved propositions, so checking can run on the
(often much smaller) lumped model -- the standard state-space
reduction of CSL/CSRL checkers such as MRMC.

The partition-refinement algorithm here is the classic
split-until-stable scheme: start from the partition induced by
(labels, reward), then repeatedly split blocks whose members differ in
their total rate into some block, until no splitter exists.  Each pass
is one sparse matrix re-bucketing (aggregate the CSR columns by target
block) plus a hash-grouping of the per-state rate signatures, O(|S| +
nnz); the number of passes is bounded by the number of blocks
produced.  That keeps refinement practical at |S| ~ 10^5, which is
what the checker's automatic pre-pass (:mod:`repro.mc.prepass`)
relies on; :func:`try_lump` adds the state-count and pass-count caps
that make the pre-pass' cost predictable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.ctmc.mrm import MarkovRewardModel
from repro.errors import ModelError


@dataclass(frozen=True)
class Lumping:
    """Result of :func:`lump`.

    Attributes
    ----------
    quotient:
        The lumped MRM; state ``b`` represents block ``b``.
    block_of:
        Array mapping each original state to its block index.
    blocks:
        For each block, the sorted list of original member states.
    """
    quotient: MarkovRewardModel
    block_of: np.ndarray
    blocks: List[List[int]]

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def lift(self, block_vector: Sequence[float]) -> np.ndarray:
        """Expand a per-block vector to a per-original-state vector."""
        values = np.asarray(block_vector, dtype=float)
        return values[self.block_of]

    def lift_set(self, block_set) -> "frozenset[int]":
        """Expand a set of block indices to original state indices."""
        members: List[int] = []
        for block in block_set:
            members.extend(self.blocks[block])
        return frozenset(members)


def _group_columns(*columns: np.ndarray) -> np.ndarray:
    """Dense group ids (0..k-1) for the row-wise tuples of *columns*."""
    stacked = np.column_stack(columns)
    _, inverse = np.unique(stacked, axis=0, return_inverse=True)
    return inverse.astype(np.int64).ravel()


def _initial_partition(model: MarkovRewardModel,
                       respect_labels: Optional[Sequence[str]]
                       ) -> np.ndarray:
    """Partition by (labelling restricted to *respect_labels*, reward)."""
    if respect_labels is None:
        respect_labels = model.atomic_propositions
    n = model.num_states
    columns = []
    for ap in sorted(respect_labels):
        mask = np.zeros(n, dtype=np.int64)
        members = np.fromiter(model.states_with(ap), dtype=np.int64,
                              count=len(model.states_with(ap)))
        if members.size:
            mask[members] = 1
        columns.append(mask)
    _, reward_code = np.unique(np.asarray(model.rewards, dtype=float),
                               return_inverse=True)
    columns.append(reward_code.astype(np.int64).ravel())
    return _group_columns(*columns)


#: Widest per-state rate signature (distinct target blocks in one
#: row) the padded vectorised grouping will materialise; wider rows
#: fall back to the per-row hashing loop.
_MAX_PADDED_SIGNATURE = 64


def _group_signatures(block_of: np.ndarray,
                      agg: sp.csr_matrix,
                      quantised: np.ndarray) -> Tuple[np.ndarray, int]:
    """Group states by (current block, aggregated rate signature).

    Returns ``(refined, num_groups)``.  The fast path pads every row's
    (target block, quantised rate) pairs into a fixed-width integer
    matrix and groups rows with one :func:`np.lexsort` plus adjacent
    comparisons -- no per-row Python work.  Rows wider than
    :data:`_MAX_PADDED_SIGNATURE` (dense-ish models, necessarily
    small) take the hashing loop instead.
    """
    n = len(block_of)
    counts = np.diff(agg.indptr)
    width = int(counts.max()) if n and len(counts) else 0
    if width > _MAX_PADDED_SIGNATURE:
        signatures: Dict[Tuple, int] = {}
        refined = np.zeros(n, dtype=np.int64)
        indptr, indices = agg.indptr, agg.indices
        for s in range(n):
            lo, hi = indptr[s], indptr[s + 1]
            key = (int(block_of[s]),
                   indices[lo:hi].tobytes(),
                   quantised[lo:hi].tobytes())
            refined[s] = signatures.setdefault(key, len(signatures))
        return refined, len(signatures)
    padded = np.full((n, 2 * width + 1), -1, dtype=np.int64)
    padded[:, 0] = block_of
    if width:
        row_id = np.repeat(np.arange(n, dtype=np.int64), counts)
        position = (np.arange(len(agg.indices), dtype=np.int64)
                    - np.repeat(agg.indptr[:-1], counts))
        padded[row_id, 1 + 2 * position] = agg.indices
        padded[row_id, 2 + 2 * position] = quantised
    order = np.lexsort(padded.T[::-1])
    ranked = padded[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.any(ranked[1:] != ranked[:-1], axis=1, out=boundary[1:])
    group_sorted = np.cumsum(boundary) - 1
    refined = np.empty(n, dtype=np.int64)
    refined[order] = group_sorted
    return refined, int(group_sorted[-1]) + 1 if n else 0


def _refine(model: MarkovRewardModel,
            block_of: np.ndarray,
            tolerance: float,
            max_passes: Optional[int] = None) -> Optional[np.ndarray]:
    """Split-until-stable refinement of *block_of*.

    Returns the stable partition, or ``None`` when *max_passes* passes
    did not reach stability (a partially refined partition is *not* a
    valid lumping -- it would merge states with different dynamics --
    so the caller must fall back to the identity).
    """
    n = model.num_states
    matrix = model.rate_matrix
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    passes = 0
    while True:
        num_blocks = int(block_of.max()) + 1 if n else 0
        # Aggregate each CSR row by the *block* of the target column:
        # one sparse re-bucketing gives every state's rate signature.
        agg = sp.csr_matrix(
            (data.copy(), block_of[indices], indptr.copy()),
            shape=(n, num_blocks))
        agg.sum_duplicates()
        agg.sort_indices()
        quantised = np.round(agg.data / tolerance).astype(np.int64)
        refined, num_groups = _group_signatures(block_of, agg,
                                                quantised)
        if num_groups == num_blocks:
            return block_of
        block_of = refined
        passes += 1
        if max_passes is not None and passes >= max_passes:
            return None


def _canonicalise(block_of: np.ndarray
                  ) -> Tuple[np.ndarray, List[List[int]]]:
    """Renumber blocks by smallest member and materialise the blocks."""
    n = len(block_of)
    _, block_of = np.unique(block_of, return_inverse=True)
    block_of = block_of.astype(np.int64).ravel()
    k = int(block_of.max()) + 1 if n else 0
    first = np.full(k, n, dtype=np.int64)
    np.minimum.at(first, block_of, np.arange(n, dtype=np.int64))
    renumber = np.empty(k, dtype=np.int64)
    renumber[np.argsort(first, kind="stable")] = np.arange(
        k, dtype=np.int64)
    block_of = renumber[block_of]
    order = np.argsort(block_of, kind="stable")
    counts = np.bincount(block_of, minlength=k)
    blocks = [chunk.tolist()
              for chunk in np.split(order, np.cumsum(counts)[:-1])]
    return block_of, blocks


def lump(model: MarkovRewardModel,
         respect_labels: Optional[Sequence[str]] = None,
         respect_initial: bool = True,
         tolerance: float = 1e-12) -> Lumping:
    """Compute the coarsest ordinary lumping of *model*.

    Parameters
    ----------
    model:
        The MRM to minimise.
    respect_labels:
        Atomic propositions that must be preserved (default: all).
        Propositions not listed are dropped from the quotient.
    respect_initial:
        Additionally separate states by their initial probability, so
        the quotient carries a well-defined initial distribution.
        (Without this, states with different initial mass may merge
        and only per-state results remain meaningful.)
    tolerance:
        Rates whose difference is below *tolerance* count as equal.
    """
    if respect_labels is None:
        respect_labels = model.atomic_propositions
    block_of = _initial_partition(model, respect_labels)
    if respect_initial:
        initial_code = np.round(
            np.asarray(model.initial_distribution, dtype=float)
            / max(tolerance, 1e-30)).astype(np.int64)
        block_of = _group_columns(block_of, initial_code)

    block_of = _refine(model, block_of, tolerance)
    block_of, blocks = _canonicalise(block_of)
    quotient = _build_quotient(model, block_of, blocks, respect_labels)
    return Lumping(quotient=quotient, block_of=block_of, blocks=blocks)


def try_lump(model: MarkovRewardModel,
             respect_labels: Optional[Sequence[str]] = None,
             respect_initial: bool = True,
             tolerance: float = 1e-12,
             max_states: Optional[int] = None,
             max_passes: Optional[int] = None,
             respect_partition: Optional[np.ndarray] = None
             ) -> Optional[Lumping]:
    """Budgeted :func:`lump` for opportunistic callers.

    Returns ``None`` -- instead of a (possibly trivial) lumping --
    whenever minimisation is unavailable or not worth the cost:

    * the model carries impulse rewards (ordinary lumpability as
      implemented ignores the impulse matrix, so the quotient would
      not be equivalent);
    * the model has more than *max_states* states (refinement cost
      cap);
    * refinement did not stabilise within *max_passes* passes (a
      partial partition is not a valid lumping, so the budget overrun
      forfeits the whole attempt);
    * the stable partition is the identity (no reduction to be had).

    *respect_partition* optionally seeds the initial partition with an
    extra per-state integer code that blocks must not cross -- the
    checker's pre-pass uses it to keep the target set ``Sat(Psi)`` a
    union of blocks without going through the label machinery.

    Used by the checker's automatic pre-pass
    (:mod:`repro.mc.prepass`) and the M009 lint pass, which must never
    spend more time deciding whether to lump than lumping saves.
    """
    if model.has_impulse_rewards:
        return None
    if max_states is not None and model.num_states > max_states:
        return None
    if respect_labels is None:
        respect_labels = model.atomic_propositions
    block_of = _initial_partition(model, respect_labels)
    if respect_partition is not None:
        block_of = _group_columns(
            block_of, np.asarray(respect_partition, dtype=np.int64))
    if respect_initial:
        initial_code = np.round(
            np.asarray(model.initial_distribution, dtype=float)
            / max(tolerance, 1e-30)).astype(np.int64)
        block_of = _group_columns(block_of, initial_code)
    block_of = _refine(model, block_of, tolerance,
                       max_passes=max_passes)
    if block_of is None:
        return None
    if len(np.unique(block_of)) == model.num_states:
        return None
    block_of, blocks = _canonicalise(block_of)
    quotient = _build_quotient(model, block_of, blocks, respect_labels)
    return Lumping(quotient=quotient, block_of=block_of, blocks=blocks)


def _build_quotient(model: MarkovRewardModel,
                    block_of: np.ndarray,
                    blocks: List[List[int]],
                    respect_labels: Sequence[str]) -> MarkovRewardModel:
    k = len(blocks)
    representatives = np.fromiter((members[0] for members in blocks),
                                  dtype=np.int64, count=k)

    # One representative row per block, columns re-bucketed by block:
    # lumpability guarantees any member gives the same aggregated row.
    sub = model.rate_matrix[representatives]
    rates = sp.csr_matrix((sub.data, block_of[sub.indices], sub.indptr),
                          shape=(k, k))
    rates.sum_duplicates()

    rewards = np.asarray(model.rewards, dtype=float)[representatives]
    alpha = np.bincount(block_of,
                        weights=model.initial_distribution,
                        minlength=k)
    if not np.isclose(alpha.sum(), 1.0):
        raise ModelError("lumping lost initial probability mass")

    labels = {}
    for ap in respect_labels:
        members = np.fromiter(model.states_with(ap), dtype=np.int64,
                              count=len(model.states_with(ap)))
        labels[ap] = ({int(b) for b in np.unique(block_of[members])}
                      if members.size else set())
    names = None
    if model.state_names is not None:
        names = ["{" + "+".join(model.name_of(s) for s in members[:3])
                 + ("+..." if len(members) > 3 else "") + "}"
                 for members in blocks]
        if len(set(names)) != len(names):
            names = [f"{name}#{i}" for i, name in enumerate(names)]
    return MarkovRewardModel(rates, rewards=rewards, labels=labels,
                             initial_distribution=alpha,
                             state_names=names)
