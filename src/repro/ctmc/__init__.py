"""Continuous-time Markov chain and Markov reward model substrate.

This package provides the state-space level data structures on which the
whole library operates:

* :class:`~repro.ctmc.ctmc.CTMC` -- a labelled continuous-time Markov
  chain with a sparse rate matrix;
* :class:`~repro.ctmc.mrm.MarkovRewardModel` -- a CTMC extended with a
  state-based reward (rate) structure;
* :class:`~repro.ctmc.builder.ModelBuilder` -- an incremental builder
  with named states;
* :mod:`~repro.ctmc.graph` -- qualitative graph analyses (reachability,
  bottom strongly connected components, Prob0/Prob1 precomputation);
* :mod:`~repro.ctmc.io` -- reading and writing MRMC-style ``.tra`` /
  ``.lab`` / ``.rew`` / ``.rewi`` model files;
* :mod:`~repro.ctmc.lumping` -- bisimulation minimisation (ordinary
  lumpability);
* :mod:`~repro.ctmc.export` -- Graphviz (DOT) rendering.
"""

from repro.ctmc.ctmc import CTMC
from repro.ctmc.mrm import MarkovRewardModel
from repro.ctmc.builder import ModelBuilder
from repro.ctmc import export, graph, io, lumping

__all__ = ["CTMC", "MarkovRewardModel", "ModelBuilder",
           "export", "graph", "io", "lumping"]
