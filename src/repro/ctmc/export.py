"""Graphviz (DOT) export of models and nets, for inspection and docs.

The output is plain DOT text; render it with ``dot -Tpdf`` or any
Graphviz viewer.  States show their name, reward rate and atomic
propositions; transitions show their rate (and impulse reward, if
any).
"""

from __future__ import annotations

from typing import Optional

from repro.ctmc.ctmc import CTMC


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:g}"


def model_to_dot(model: CTMC, graph_name: str = "mrm") -> str:
    """Render a CTMC or MRM as a DOT digraph string."""
    rewards = getattr(model, "rewards", None)
    impulses = (model.impulse_matrix
                if getattr(model, "has_impulse_rewards", False)
                else None)
    initial = model.initial_distribution

    lines = [f"digraph {graph_name} {{",
             "  rankdir=LR;",
             "  node [shape=ellipse, fontsize=10];"]
    for s in range(model.num_states):
        label_parts = [model.name_of(s)]
        propositions = sorted(model.labels_of(s))
        if propositions:
            label_parts.append("{" + ",".join(propositions) + "}")
        if rewards is not None and rewards[s] != 0.0:
            label_parts.append(f"rho={_fmt(float(rewards[s]))}")
        style = ""
        if initial[s] > 0.0:
            style = ", style=bold"
        if model.is_absorbing(s):
            style += ", peripheries=2"
        lines.append(f'  s{s} [label="' + "\\n".join(label_parts)
                     + f'"{style}];')
    matrix = model.rate_matrix.tocoo()
    for source, target, rate in zip(matrix.row, matrix.col,
                                    matrix.data):
        label = _fmt(float(rate))
        if impulses is not None:
            impulse = impulses[source, target]
            if impulse:
                label += f" / +{_fmt(float(impulse))}"
        lines.append(f'  s{source} -> s{target} [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)


def srn_to_dot(net, graph_name: str = "srn") -> str:
    """Render a stochastic reward net as a DOT digraph string.

    Places are circles (with their initial tokens), timed transitions
    are open rectangles, immediate transitions filled bars; inhibitor
    arcs end in an ``odot`` arrowhead.
    """
    lines = [f"digraph {graph_name} {{",
             "  rankdir=LR;",
             "  node [fontsize=10];"]
    for name in net.place_names:
        marking = net.initial_marking()
        tokens = marking[name]
        decoration = f"\\n{'•' * tokens}" if 0 < tokens <= 5 else (
            f"\\n{tokens}" if tokens else "")
        lines.append(f'  p_{name} [shape=circle, '
                     f'label="{name}{decoration}"];')
    for transition in net.transitions:
        if transition.is_immediate:
            lines.append(f'  t_{transition.name} [shape=box, '
                         f'style=filled, fillcolor=black, height=0.1, '
                         f'label="", xlabel="{transition.name}"];')
        else:
            rate = (transition.rate if not callable(transition.rate)
                    else "f(m)")
            lines.append(f'  t_{transition.name} [shape=box, '
                         f'label="{transition.name}\\n{rate}"];')
        for position, multiplicity in transition.inputs:
            place = net.place_names[position]
            extra = (f' [label="{multiplicity}"]'
                     if multiplicity > 1 else "")
            lines.append(f"  p_{place} -> t_{transition.name}{extra};")
        for position, multiplicity in transition.outputs:
            place = net.place_names[position]
            extra = (f' [label="{multiplicity}"]'
                     if multiplicity > 1 else "")
            lines.append(f"  t_{transition.name} -> p_{place}{extra};")
        for position, multiplicity in transition.inhibitors:
            place = net.place_names[position]
            label = (f', label="{multiplicity}"'
                     if multiplicity > 1 else "")
            lines.append(f"  p_{place} -> t_{transition.name} "
                         f"[arrowhead=odot{label}];")
    lines.append("}")
    return "\n".join(lines)
