"""The CSR kernel backend for very large, sparse models.

The per-element loop bodies (reward shifts, first-order scans, the
Sericola triangular update) operate on the dense ``(rows, cells)``
weight arrays regardless of backend, so this backend inherits them
unchanged from :class:`~repro.kernels.numpy_backend.NumpyBackend` --
they are bit-identical by construction.  What distinguishes the
backends is the *step operator* representation
(:attr:`~repro.kernels.base.KernelBackend.operator_policy`):

``sparse``
    never densifies a step matrix.  Every per-step product is a CSR
    SpMM batched over the reward-level axis -- one
    ``csr_matrix @ (|S|, batch)`` product per step, exactly the
    one-multiply-per-step structure of
    :class:`~repro.kernels.base.SericolaSeries` and
    :class:`~repro.kernels.base.DiscretizationPropagator` -- so memory
    stays O(nnz + |S| * batch) and |S| ~ 10^5 fits comfortably where a
    densified operator would need an 80 GB array.

``dense``
    the opposite extreme: densify unconditionally.  This is the
    explicit O(|S|^2) baseline the scaling benchmarks
    (``benchmarks/bench_kernels.py``) compare the sparse backend
    against; it is never auto-selected.

The ``auto`` density heuristic of the default backends already keeps
big operators CSR (:func:`~repro.kernels.base.make_operator`); the
sparse backend turns that heuristic into a guarantee, which matters
for mid-sized models whose reduced/expanded chains straddle the
heuristic's density thresholds.
"""

from __future__ import annotations

from repro.kernels.numpy_backend import NumpyBackend


class SparseBackend(NumpyBackend):
    """Kernel backend that keeps every step operator in CSR form."""

    name = "sparse"
    operator_policy = "sparse"


class DenseBackend(NumpyBackend):
    """Kernel backend that densifies every step operator (baseline).

    Exists for benchmarking and diagnosis only: it makes the
    O(|S|^2) memory/GEMM cost of dense propagation explicit and
    selectable (``kernel="dense"`` / ``REPRO_KERNEL=dense``), so the
    scaling benchmarks can gate the sparse backend's speedup against
    a real dense baseline instead of the auto heuristic.
    """

    name = "dense"
    operator_policy = "dense"
