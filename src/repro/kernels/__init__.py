"""Batched propagation kernels behind interchangeable backends.

The kernels package owns the inner propagation steps of all three
engines (discretisation adjoint/forward sweeps, the Sericola
``b(h, n, k)`` series advance, uniformisation matvecs) behind a
stable array-in/array-out API defined in :mod:`repro.kernels.base`.

Backend selection order (first match wins):

1. an explicit ``kernel=`` argument on the engine (a backend name or a
   :class:`KernelBackend` instance);
2. the ``REPRO_KERNEL`` environment variable (``numpy``, ``numba``,
   ``sparse`` or ``dense``);
3. model-aware auto-selection (:func:`select_for_model`): ``sparse``
   when the model is large (|S| >= :data:`SPARSE_AUTO_MIN_STATES`)
   and its rate matrix sparse (nnz density <=
   :data:`SPARSE_AUTO_MAX_DENSITY`), else ``numba`` when importable,
   else ``numpy``.

Engines resolve step 3 lazily, per model, at their entry points
(:func:`resolve_static` returns ``None`` when neither a knob nor the
environment pins a backend); the cache tokens then carry the literal
``"auto"`` sentinel, which is sound because the per-model choice is a
deterministic function of the model content already in the key.

The numba backend is import-guarded: requesting it without numba
installed emits a :class:`RuntimeWarning` and falls back to the pure
NumPy backend, so the package runs unchanged without numba.  The
``sparse`` backend (CSR step operators, SpMM batched over the reward
axis) and the ``dense`` benchmarking baseline are always available --
scipy is a hard dependency.
"""

from __future__ import annotations

import importlib.util
import os
import warnings
from typing import Dict, List, Optional, Union

from repro.errors import NumericalError
from repro.kernels.base import (
    DenseOperator,
    DiscretizationPropagator,
    KernelBackend,
    SericolaPlan,
    SericolaSeries,
    ShiftPlan,
    SparseOperator,
    StepOperator,
    build_sericola_plan,
    build_shift_plan,
    make_operator,
)

ENV_VAR = "REPRO_KERNEL"

_BACKEND_NAMES = ("numpy", "numba", "sparse", "dense")

#: Auto-selection thresholds (:func:`select_for_model`): the sparse
#: backend wins on models at least this large ...
SPARSE_AUTO_MIN_STATES = 4096
#: ... whose rate matrix is at most this dense (nnz / |S|^2).
SPARSE_AUTO_MAX_DENSITY = 1.0 / 16.0

_instances: Dict[str, KernelBackend] = {}
_numba_available: Optional[bool] = None


def numba_available() -> bool:
    """True when the numba package can be imported (memoised)."""
    global _numba_available
    if _numba_available is None:
        try:
            _numba_available = importlib.util.find_spec("numba") is not None
        except (ImportError, ValueError):
            _numba_available = False
    return _numba_available


def available_backends() -> List[str]:
    """Names of the backends usable in this environment."""
    names = ["numpy"]
    if numba_available():
        names.append("numba")
    names.extend(["sparse", "dense"])
    return names


def reset_backend_cache() -> None:
    """Forget memoised backend instances and availability (tests)."""
    global _numba_available
    _numba_available = None
    _instances.clear()


def default_backend_name() -> str:
    """Resolve the backend name when no explicit ``kernel=`` is given."""
    env = os.environ.get(ENV_VAR)
    if env:
        name = env.strip().lower()
        if name in _BACKEND_NAMES:
            return name
        warnings.warn(
            f"ignoring unknown {ENV_VAR}={env!r}; "
            f"expected one of {', '.join(_BACKEND_NAMES)}",
            RuntimeWarning, stacklevel=2)
    return "numba" if numba_available() else "numpy"


def get_backend(name: Union[str, KernelBackend, None] = None
                ) -> KernelBackend:
    """Return a kernel backend instance.

    Accepts a backend name (``"numpy"``/``"numba"``), an existing
    :class:`KernelBackend` instance (returned as-is), or ``None`` for
    the default selection order documented in the module docstring.
    """
    if isinstance(name, KernelBackend):
        return name
    if name is None:
        name = default_backend_name()
    name = name.strip().lower()
    if name not in _BACKEND_NAMES:
        raise NumericalError(
            f"unknown kernel backend {name!r}; "
            f"available: {', '.join(available_backends())}")
    cached = _instances.get(name)
    if cached is not None:
        return cached
    backend: KernelBackend
    if name == "numba":
        try:
            from repro.kernels.numba_backend import NumbaBackend
        except ImportError:
            warnings.warn(
                "kernel backend 'numba' requested but numba is not "
                "importable; falling back to the pure-NumPy backend",
                RuntimeWarning, stacklevel=2)
            return get_backend("numpy")
        backend = NumbaBackend()
    elif name == "sparse":
        from repro.kernels.sparse_backend import SparseBackend
        backend = SparseBackend()
    elif name == "dense":
        from repro.kernels.sparse_backend import DenseBackend
        backend = DenseBackend()
    else:
        from repro.kernels.numpy_backend import NumpyBackend
        backend = NumpyBackend()
    _instances[name] = backend
    return backend


def resolve_static(kernel: Union[str, KernelBackend, None]
                   ) -> Optional[KernelBackend]:
    """The backend pinned by a knob or the environment, else ``None``.

    Engines call this at construction time: an explicit ``kernel=``
    argument or a set ``REPRO_KERNEL`` resolves eagerly (preserving
    the early unknown-name/fallback diagnostics); ``None`` means "no
    static preference" and the engine defers to the per-model
    :func:`select_for_model` at its entry points.
    """
    if kernel is not None:
        return get_backend(kernel)
    if os.environ.get(ENV_VAR):
        return get_backend(None)
    return None


def select_for_model(num_states: int, num_transitions: int
                     ) -> KernelBackend:
    """Model-aware auto-selection (step 3 of the selection order).

    Large, sparse models get the CSR backend -- its SpMM step never
    materialises an O(|S|^2) operator -- everything else gets the
    default dense-loop backend (numba when importable, else numpy),
    whose ``auto`` operator heuristic already serves small chains
    well.  The choice is a deterministic function of the model's
    dimensions, so engines may cache results under an ``"auto"``
    token without collisions.
    """
    if num_states >= SPARSE_AUTO_MIN_STATES:
        density = num_transitions / float(max(num_states, 1)) ** 2
        if density <= SPARSE_AUTO_MAX_DENSITY:
            return get_backend("sparse")
    return get_backend("numba" if numba_available() else "numpy")


def note_selected(engine: str, backend: str) -> None:
    """Record the backend an engine run selected (obs gauge)."""
    from repro.obs import OBS
    if OBS.enabled:
        OBS.metrics.gauge("repro_kernel_selected",
                          engine=engine, kernel=backend).set(1.0)


__all__ = [
    "ENV_VAR",
    "SPARSE_AUTO_MAX_DENSITY",
    "SPARSE_AUTO_MIN_STATES",
    "DenseOperator",
    "DiscretizationPropagator",
    "KernelBackend",
    "SericolaPlan",
    "SericolaSeries",
    "ShiftPlan",
    "SparseOperator",
    "StepOperator",
    "available_backends",
    "build_sericola_plan",
    "build_shift_plan",
    "default_backend_name",
    "get_backend",
    "make_operator",
    "note_selected",
    "numba_available",
    "reset_backend_cache",
    "resolve_static",
    "select_for_model",
]
