"""Batched propagation kernels behind interchangeable backends.

The kernels package owns the inner propagation steps of all three
engines (discretisation adjoint/forward sweeps, the Sericola
``b(h, n, k)`` series advance, uniformisation matvecs) behind a
stable array-in/array-out API defined in :mod:`repro.kernels.base`.

Backend selection order (first match wins):

1. an explicit ``kernel=`` argument on the engine (a backend name or a
   :class:`KernelBackend` instance);
2. the ``REPRO_KERNEL`` environment variable (``numpy`` or ``numba``);
3. auto-detection: ``numba`` when importable, else ``numpy``.

The numba backend is import-guarded: requesting it without numba
installed emits a :class:`RuntimeWarning` and falls back to the pure
NumPy backend, so the package runs unchanged without numba.
"""

from __future__ import annotations

import importlib.util
import os
import warnings
from typing import Dict, List, Optional, Union

from repro.errors import NumericalError
from repro.kernels.base import (
    DenseOperator,
    DiscretizationPropagator,
    KernelBackend,
    SericolaPlan,
    SericolaSeries,
    ShiftPlan,
    SparseOperator,
    StepOperator,
    build_sericola_plan,
    build_shift_plan,
    make_operator,
)

ENV_VAR = "REPRO_KERNEL"

_BACKEND_NAMES = ("numpy", "numba")

_instances: Dict[str, KernelBackend] = {}
_numba_available: Optional[bool] = None


def numba_available() -> bool:
    """True when the numba package can be imported (memoised)."""
    global _numba_available
    if _numba_available is None:
        try:
            _numba_available = importlib.util.find_spec("numba") is not None
        except (ImportError, ValueError):
            _numba_available = False
    return _numba_available


def available_backends() -> List[str]:
    """Names of the backends usable in this environment."""
    names = ["numpy"]
    if numba_available():
        names.append("numba")
    return names


def reset_backend_cache() -> None:
    """Forget memoised backend instances and availability (tests)."""
    global _numba_available
    _numba_available = None
    _instances.clear()


def default_backend_name() -> str:
    """Resolve the backend name when no explicit ``kernel=`` is given."""
    env = os.environ.get(ENV_VAR)
    if env:
        name = env.strip().lower()
        if name in _BACKEND_NAMES:
            return name
        warnings.warn(
            f"ignoring unknown {ENV_VAR}={env!r}; "
            f"expected one of {', '.join(_BACKEND_NAMES)}",
            RuntimeWarning, stacklevel=2)
    return "numba" if numba_available() else "numpy"


def get_backend(name: Union[str, KernelBackend, None] = None
                ) -> KernelBackend:
    """Return a kernel backend instance.

    Accepts a backend name (``"numpy"``/``"numba"``), an existing
    :class:`KernelBackend` instance (returned as-is), or ``None`` for
    the default selection order documented in the module docstring.
    """
    if isinstance(name, KernelBackend):
        return name
    if name is None:
        name = default_backend_name()
    name = name.strip().lower()
    if name not in _BACKEND_NAMES:
        raise NumericalError(
            f"unknown kernel backend {name!r}; "
            f"available: {', '.join(available_backends())}")
    cached = _instances.get(name)
    if cached is not None:
        return cached
    backend: KernelBackend
    if name == "numba":
        try:
            from repro.kernels.numba_backend import NumbaBackend
        except ImportError:
            warnings.warn(
                "kernel backend 'numba' requested but numba is not "
                "importable; falling back to the pure-NumPy backend",
                RuntimeWarning, stacklevel=2)
            return get_backend("numpy")
        backend = NumbaBackend()
    else:
        from repro.kernels.numpy_backend import NumpyBackend
        backend = NumpyBackend()
    _instances[name] = backend
    return backend


def note_selected(engine: str, backend: str) -> None:
    """Record the backend an engine run selected (obs gauge)."""
    from repro.obs import OBS
    if OBS.enabled:
        OBS.metrics.gauge("repro_kernel_selected",
                          engine=engine, kernel=backend).set(1.0)


__all__ = [
    "ENV_VAR",
    "DenseOperator",
    "DiscretizationPropagator",
    "KernelBackend",
    "SericolaPlan",
    "SericolaSeries",
    "ShiftPlan",
    "SparseOperator",
    "StepOperator",
    "available_backends",
    "build_sericola_plan",
    "build_shift_plan",
    "default_backend_name",
    "get_backend",
    "make_operator",
    "note_selected",
    "numba_available",
    "reset_backend_cache",
]
