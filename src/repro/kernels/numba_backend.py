"""Optional numba ``@njit`` kernel backend.

Importing this module requires numba; :func:`repro.kernels.get_backend`
guards the import and falls back to the NumPy backend when numba is
absent.  Each kernel is a straight per-row loop compiled with
``@njit(cache=True)``.  The arithmetic mirrors the NumPy backend
exactly -- the first-order recurrence uses the same two-term
``move * x[k] + stay * y`` update as ``scipy.signal.lfilter`` -- so the
two backends agree bit-for-bit on the shift kernels and to well below
``1e-12`` elsewhere.
"""

from __future__ import annotations

import numpy as np
from numba import njit

from repro.kernels.base import KernelBackend, SericolaPlan, ShiftPlan


@njit(cache=True)
def _shift_down(src: np.ndarray, dst: np.ndarray, shifts: np.ndarray,
                clamp: bool) -> None:
    num_rows, num_cells = src.shape
    for i in range(num_rows):
        v = shifts[i]
        if v == 0:
            for c in range(num_cells):
                dst[i, c] = src[i, c]
        elif v < num_cells:
            for c in range(num_cells - v):
                dst[i, c] = src[i, c + v]
            for c in range(num_cells - v, num_cells):
                dst[i, c] = 0.0
            if clamp:
                folded = 0.0
                for c in range(v):
                    folded += src[i, c]
                dst[i, 0] += folded
        else:
            for c in range(num_cells):
                dst[i, c] = 0.0
            if clamp:
                total = 0.0
                for c in range(num_cells):
                    total += src[i, c]
                dst[i, 0] = total


@njit(cache=True)
def _shift_up(src: np.ndarray, dst: np.ndarray, shifts: np.ndarray,
              clamp: bool) -> None:
    num_rows, num_cells = src.shape
    for i in range(num_rows):
        v = shifts[i]
        if v == 0:
            for c in range(num_cells):
                dst[i, c] = src[i, c]
        elif v < num_cells:
            for c in range(num_cells - 1, v - 1, -1):
                dst[i, c] = src[i, c - v]
            head = src[i, 0] if clamp else 0.0
            for c in range(v):
                dst[i, c] = head
        else:
            head = src[i, 0] if clamp else 0.0
            for c in range(num_cells):
                dst[i, c] = head


@njit(cache=True)
def _scan(stay: float, move: float, inputs: np.ndarray,
          start: np.ndarray, out: np.ndarray) -> None:
    num_rows, length = inputs.shape
    for i in range(num_rows):
        y = start[i]
        for k in range(length):
            y = move * inputs[i, k] + stay * y
            out[i, k] = y


@njit(cache=True)
def _triangular(pb: np.ndarray, new_b: np.ndarray, u_next: np.ndarray,
                levels: np.ndarray, cls: np.ndarray, n: int) -> None:
    num_states = pb.shape[0]
    m = levels.shape[0] - 1
    for s in range(num_states):
        j = cls[s]
        value = levels[j]
        # Pass 1 rows (rho(s) >= rho_g): ascending g, ascending k.
        for g in range(1, j + 1):
            lo = levels[g - 1]
            hi = levels[g]
            stay = (value - hi) / (value - lo)
            move = (hi - lo) / (value - lo)
            y = u_next[s] if g == 1 else new_b[s, n, g - 2]
            new_b[s, 0, g - 1] = y
            for k in range(n):
                y = move * pb[s, k, g - 1] + stay * y
                new_b[s, k + 1, g - 1] = y
        # Pass 2 rows (rho(s) <= rho_{g-1}): descending g, descending k.
        for g in range(m, j, -1):
            lo = levels[g - 1]
            hi = levels[g]
            stay = (lo - value) / (hi - value)
            move = (hi - lo) / (hi - value)
            y = 0.0 if g == m else new_b[s, 0, g]
            new_b[s, n, g - 1] = y
            for k in range(n - 1, -1, -1):
                y = move * pb[s, k, g - 1] + stay * y
                new_b[s, k, g - 1] = y


class NumbaBackend(KernelBackend):
    """``@njit``-compiled implementation of the kernel contract."""

    name = "numba"

    def shift_down(self, src: np.ndarray, dst: np.ndarray,
                   plan: ShiftPlan, clamp: bool) -> None:
        _shift_down(np.ascontiguousarray(src), dst, plan.shifts, clamp)

    def shift_up(self, src: np.ndarray, dst: np.ndarray,
                 plan: ShiftPlan, clamp: bool) -> None:
        _shift_up(np.ascontiguousarray(src), dst, plan.shifts, clamp)

    def first_order_scan(self, stay: float, move: float,
                         inputs: np.ndarray,
                         start: np.ndarray) -> np.ndarray:
        out = np.empty(inputs.shape)
        _scan(stay, move, np.ascontiguousarray(inputs, dtype=float),
              np.ascontiguousarray(start, dtype=float), out)
        return out

    def sericola_triangular(self, pb: np.ndarray, new_b: np.ndarray,
                            u_next: np.ndarray, plan: SericolaPlan,
                            n: int) -> None:
        _triangular(np.ascontiguousarray(pb), new_b,
                    np.ascontiguousarray(u_next, dtype=float),
                    plan.levels, plan.cls, n)
