"""The pure-NumPy kernel backend (the always-available baseline).

Every loop body is expressed over whole reward-value groups: the
shift kernels gather/scatter one contiguous slice per distinct
displacement (no full-array zeroing -- only the vacated tail of each
group is cleared), and the first-order recurrences run as IIR filters
in :func:`scipy.signal.lfilter`'s C loop.  This backend defines the
reference semantics; the numba backend must agree to ``<= 1e-12``.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import lfilter

from repro.kernels.base import KernelBackend, SericolaPlan, ShiftPlan


class NumpyBackend(KernelBackend):
    """Vectorised NumPy/SciPy implementation of the kernel contract."""

    name = "numpy"

    def shift_down(self, src: np.ndarray, dst: np.ndarray,
                   plan: ShiftPlan, clamp: bool) -> None:
        num_cells = src.shape[1]
        for value, rows in plan.groups:
            if value == 0:
                dst[rows] = src[rows]
            elif value < num_cells:
                dst[rows, :num_cells - value] = src[rows, value:]
                dst[rows, num_cells - value:] = 0.0
                if clamp:
                    dst[rows, 0] += src[rows, :value].sum(axis=1)
            else:
                dst[rows] = 0.0
                if clamp:
                    dst[rows, 0] = src[rows].sum(axis=1)

    def shift_up(self, src: np.ndarray, dst: np.ndarray,
                 plan: ShiftPlan, clamp: bool) -> None:
        num_cells = src.shape[1]
        for value, rows in plan.groups:
            if value == 0:
                dst[rows] = src[rows]
            elif value < num_cells:
                dst[rows, value:] = src[rows, :num_cells - value]
                if clamp:
                    dst[rows, :value] = src[rows, 0][:, None]
                else:
                    dst[rows, :value] = 0.0
            elif clamp:
                dst[rows] = src[rows, 0][:, None]
            else:
                dst[rows] = 0.0

    def first_order_scan(self, stay: float, move: float,
                         inputs: np.ndarray,
                         start: np.ndarray) -> np.ndarray:
        if inputs.shape[1] == 0:
            return np.array(inputs, dtype=float)
        initial = (stay * start)[:, None]
        output, _ = lfilter([move], [1.0, -stay], inputs, axis=1,
                            zi=initial)
        return output

    def sericola_triangular(self, pb: np.ndarray, new_b: np.ndarray,
                            u_next: np.ndarray, plan: SericolaPlan,
                            n: int) -> None:
        levels = plan.levels
        classes = plan.classes
        m = len(levels) - 1
        # Pass 1 (ascending g): rows with rho(i) >= rho_g, ascending k.
        for g in range(1, m + 1):
            lo_level, hi_level = levels[g - 1], levels[g]
            boundary = u_next if g == 1 else new_b[:, n, g - 2]
            for j in range(g, m + 1):
                rows = classes[j]
                if rows.size == 0:
                    continue
                value = levels[j]
                stay = (value - hi_level) / (value - lo_level)
                move = (hi_level - lo_level) / (value - lo_level)
                start = boundary[rows]
                new_b[rows, 0, g - 1] = start
                new_b[rows, 1:, g - 1] = self.first_order_scan(
                    stay, move, pb[rows, :, g - 1], start)
        # Pass 2 (descending g): rows with rho(i) <= rho_{g-1},
        # descending k.
        for g in range(m, 0, -1):
            lo_level, hi_level = levels[g - 1], levels[g]
            for j in range(0, g):
                rows = classes[j]
                if rows.size == 0:
                    continue
                value = levels[j]
                stay = (lo_level - value) / (hi_level - value)
                move = (hi_level - lo_level) / (hi_level - value)
                tail = (np.zeros(rows.size) if g == m
                        else np.array(new_b[rows, 0, g]))
                new_b[rows, n, g - 1] = tail
                scanned = self.first_order_scan(
                    stay, move, pb[rows, ::-1, g - 1], tail)
                new_b[rows, :n, g - 1] = scanned[:, ::-1]
