"""Backend-neutral building blocks of the propagation kernels.

The three engines spend essentially all their time in a handful of
inner loops: the Tijms--Veldman adjoint/forward step (one sparse or
dense product plus a per-state reward-cell shift), Sericola's
``b(h,n,k)`` triangular update (one block product plus two sweeps of
first-order recurrences), and the plain uniformisation series (one
product per term).  This module owns the *shared* structure of those
loops -- operator wrappers, precomputed index plans, the
double-buffered steppers -- while the per-element loop bodies live in
interchangeable backends (:mod:`repro.kernels.numpy_backend`,
:mod:`repro.kernels.numba_backend`) behind the
:class:`KernelBackend` contract.

Design rules (see ``docs/KERNELS.md``):

* everything here is array-in/array-out: no engine objects, no caches,
  no observability -- callers own keys, counters and spans;
* the operator representation (:func:`make_operator`) is
  backend-agnostic, so cached operators may be shared by engines
  running different backends;
* plans (:class:`ShiftPlan`, :class:`SericolaPlan`) are immutable and
  derived from the model's reward structure only, so callers cache
  them per model fingerprint.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

Matrix = Union[np.ndarray, sp.spmatrix]

#: Below this state count a dense step matrix always wins: BLAS-3 beats
#: scipy's CSR dispatch overhead on paper-sized chains.
DENSE_MAX_STATES = 128
#: Up to this size a dense matrix is still used when it is genuinely
#: dense (at least :data:`DENSE_MIN_DENSITY` of entries non-zero).
DENSE_MAX_STATES_IF_DENSE = 1024
DENSE_MIN_DENSITY = 0.25


class StepOperator:
    """A fixed linear map applied once per propagation step.

    ``matmat(block, out=None)`` computes ``matrix @ block``; dense
    operators write into *out* when given (``in_place`` is ``True``),
    sparse operators always return a fresh array.  Callers must adopt
    the *returned* array either way.  ``matvec``/``rmatvec`` are the
    vector specialisations (``M @ v`` and ``v @ M``).
    """

    kind: str = "abstract"
    #: Whether :meth:`matmat` honours its ``out`` argument.
    in_place: bool = False

    @property
    def shape(self) -> Tuple[int, int]:
        raise NotImplementedError

    def matmat(self, block: np.ndarray,
               out: Optional[np.ndarray] = None) -> np.ndarray:
        raise NotImplementedError

    def matvec(self, vector: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def rmatvec(self, vector: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class DenseOperator(StepOperator):
    """BLAS-3 operator for small or genuinely dense step matrices."""

    kind = "dense"
    in_place = True

    def __init__(self, matrix: Matrix):
        if sp.issparse(matrix):
            matrix = np.asarray(matrix.todense())
        self.matrix = np.ascontiguousarray(matrix, dtype=float)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.matrix.shape[0], self.matrix.shape[1])

    def matmat(self, block: np.ndarray,
               out: Optional[np.ndarray] = None) -> np.ndarray:
        if out is None:
            return self.matrix @ block
        np.matmul(self.matrix, block, out=out)
        return out

    def matvec(self, vector: np.ndarray) -> np.ndarray:
        return self.matrix @ vector

    def rmatvec(self, vector: np.ndarray) -> np.ndarray:
        return vector @ self.matrix

    def __repr__(self) -> str:
        return f"DenseOperator(shape={self.shape})"


class SparseOperator(StepOperator):
    """CSR operator for large sparse step matrices.

    ``matmat`` ignores *out* (scipy always allocates the product);
    callers adopt the returned array, which keeps the calling
    convention uniform with :class:`DenseOperator`.
    """

    kind = "sparse"
    in_place = False

    def __init__(self, matrix: Matrix):
        self.matrix = sp.csr_matrix(matrix)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.matrix.shape[0], self.matrix.shape[1])

    def matmat(self, block: np.ndarray,
               out: Optional[np.ndarray] = None) -> np.ndarray:
        return self.matrix @ block

    def matvec(self, vector: np.ndarray) -> np.ndarray:
        return self.matrix @ vector

    def rmatvec(self, vector: np.ndarray) -> np.ndarray:
        return vector @ self.matrix

    def __repr__(self) -> str:
        return (f"SparseOperator(shape={self.shape}, "
                f"nnz={self.matrix.nnz})")


#: Valid operator-representation policies for :func:`make_operator`.
OPERATOR_POLICIES = ("auto", "dense", "sparse")


def make_operator(matrix: Matrix, policy: str = "auto") -> StepOperator:
    """Wrap *matrix* in the per-step representation *policy* dictates.

    ``"auto"`` (the default heuristic): small matrices (and mid-sized
    genuinely dense ones) go dense -- one BLAS-3 call per step beats
    scipy's CSR dispatch overhead -- everything else stays CSR.
    ``"dense"`` densifies unconditionally (the O(|S|^2)-memory
    baseline), ``"sparse"`` keeps CSR unconditionally (the sparse
    kernel backend's choice, so |S| ~ 10^5 never materialises an
    |S|^2 array).  Backends pick their policy through
    :attr:`KernelBackend.operator_policy`; operator caches must key on
    the policy, since the representation now depends on it.
    """
    if policy == "dense":
        return DenseOperator(matrix)
    if policy == "sparse":
        return SparseOperator(matrix)
    if policy != "auto":
        raise ValueError(
            f"unknown operator policy {policy!r}; expected one of "
            f"{', '.join(OPERATOR_POLICIES)}")
    if not sp.issparse(matrix):
        return DenseOperator(np.asarray(matrix))
    n = max(int(matrix.shape[0]), 1)
    density = matrix.nnz / float(n * max(int(matrix.shape[1]), 1))
    if n <= DENSE_MAX_STATES or (n <= DENSE_MAX_STATES_IF_DENSE
                                 and density >= DENSE_MIN_DENSITY):
        return DenseOperator(matrix)
    return SparseOperator(matrix)


class ShiftPlan:
    """Precomputed per-row reward-cell displacements.

    ``shifts[i]`` is the number of cells row ``i`` moves per step;
    ``groups`` holds the same information as ``(value, row-indices)``
    pairs (ascending in value) for the vectorised NumPy kernels, while
    the flat ``shifts`` array feeds the numba loops.  Plans depend on
    the model's reward vector only, so callers cache them per model
    fingerprint instead of re-deriving ``np.unique`` + ``flatnonzero``
    on every propagation.
    """

    __slots__ = ("shifts", "groups")

    def __init__(self, shifts: np.ndarray,
                 groups: Tuple[Tuple[int, np.ndarray], ...]):
        self.shifts = shifts
        self.groups = groups

    @property
    def num_rows(self) -> int:
        return int(self.shifts.shape[0])

    def expand(self, batch: int) -> "ShiftPlan":
        """The plan on the ``(state, batch)``-flattened row axis.

        Row ``s * batch + b`` of the flattened array belongs to state
        ``s`` and inherits its displacement.
        """
        offsets = np.arange(batch, dtype=np.int64)
        shifts = np.repeat(self.shifts, batch)
        groups = tuple(
            (value, (rows[:, None] * batch + offsets).ravel())
            for value, rows in self.groups)
        return ShiftPlan(shifts, groups)


def build_shift_plan(shifts: Union[np.ndarray, Sequence[int]]) -> ShiftPlan:
    """A :class:`ShiftPlan` from the per-row displacement vector."""
    flat = np.ascontiguousarray(shifts, dtype=np.int64)
    groups = tuple((int(value), np.flatnonzero(flat == value))
                   for value in np.unique(flat))
    return ShiftPlan(flat, groups)


class SericolaPlan:
    """Reward-level structure driving Sericola's triangular update.

    ``levels`` are the distinct reward rates (ascending), ``classes``
    the per-level state index arrays, and ``cls[s]`` the level index of
    state ``s`` -- together they fix which recursion branch (ascending
    or descending in ``k``) each state row takes.  Derived from the
    reward vector only; cache per model fingerprint.
    """

    __slots__ = ("levels", "classes", "cls")

    def __init__(self, levels: np.ndarray,
                 classes: Tuple[np.ndarray, ...],
                 cls: np.ndarray):
        self.levels = levels
        self.classes = classes
        self.cls = cls


def build_sericola_plan(rewards: Union[np.ndarray, Sequence[float]]
                        ) -> SericolaPlan:
    """A :class:`SericolaPlan` from the model's reward-rate vector."""
    rho = np.asarray(rewards, dtype=float)
    levels = np.unique(rho)
    classes = tuple(np.flatnonzero(rho == level) for level in levels)
    cls = np.searchsorted(levels, rho).astype(np.int64)
    return SericolaPlan(levels, classes, cls)


class KernelBackend(ABC):
    """The loop bodies every kernel backend must provide.

    All methods are array-in/array-out over C-contiguous float64
    buffers the *caller* owns; a backend never allocates per-step
    state, touches caches, or records metrics.  Backends must agree
    with each other to ``<= 1e-12`` element-wise on every method (the
    cross-backend property tests enforce this), so engine cache tokens
    may treat the backend as an accuracy-neutral knob at that
    tolerance.
    """

    name: str = "abstract"
    #: How :meth:`make_operator` represents step matrices: the
    #: ``"auto"`` density heuristic for the dense-loop backends, an
    #: unconditional ``"sparse"`` for the CSR backend (see
    #: :data:`OPERATOR_POLICIES`).
    operator_policy: str = "auto"

    def make_operator(self, matrix: Matrix) -> StepOperator:
        """Wrap *matrix* under this backend's operator policy."""
        return make_operator(matrix, policy=self.operator_policy)

    @abstractmethod
    def shift_down(self, src: np.ndarray, dst: np.ndarray,
                   plan: ShiftPlan, clamp: bool) -> None:
        """The adjoint reward displacement: ``dst[i, k] = src[i, k +
        shifts[i]]`` (zero past the end).  With *clamp* the mass of the
        first ``shifts[i]`` cells folds into cell 0 -- the adjoint of
        duplicating cell 0 upward.  Overwrites *dst* entirely."""

    @abstractmethod
    def shift_up(self, src: np.ndarray, dst: np.ndarray,
                 plan: ShiftPlan, clamp: bool) -> None:
        """The forward reward displacement: ``dst[i, k] = src[i, k -
        shifts[i]]`` (zero below the start, or cell 0 broadcast under
        *clamp* -- the paper's literal index rule).  Overwrites *dst*
        entirely."""

    @abstractmethod
    def first_order_scan(self, stay: float, move: float,
                         inputs: np.ndarray,
                         start: np.ndarray) -> np.ndarray:
        """Evaluate ``y[k] = move * inputs[i, k] + stay * y[k-1]``
        along axis 1, with ``y[-1] = start[i]`` per row; returns the
        ``(rows, K)`` array of ``y[0..K-1]``."""

    @abstractmethod
    def sericola_triangular(self, pb: np.ndarray, new_b: np.ndarray,
                            u_next: np.ndarray, plan: SericolaPlan,
                            n: int) -> None:
        """One step ``n-1 -> n`` of the triangular ``b(h,n,k)`` update.

        *pb* is the ``(|S|, n, m)`` array of ``P @ b(g, n-1, k)``
        products, *new_b* the ``(|S|, n+1, m)`` output view, *u_next*
        the advanced transient iterate ``P^n 1_{S'}``.  Rows with
        ``cls[s] >= g`` follow the ascending-``k`` recursion seeded at
        ``k = 0``, rows with ``cls[s] < g`` the descending one seeded
        at ``k = n`` (see :mod:`repro.algorithms.sericola`)."""


class DiscretizationPropagator:
    """Double-buffered stepper of the Tijms--Veldman recurrence.

    Owns the per-step loop body of both orientations over a caller-
    seeded ``(rows..., cells)`` array -- 2-D ``(|S|, R+1)`` for the
    adjoint and scalar-forward paths, 3-D ``(|S|, batch, R+1)`` for
    the batched forward tensor:

    * adjoint (``forward=False``): fused product ``(diag(stay) + R d)
      @ W`` plus the impulse shift-down products, then the per-state
      reward shift *down*;
    * forward (``forward=True``): reward shift *up* first, then the
      fused product and the impulse shift-up products.

    The weight/density array and its companion buffers are allocated
    once and swapped per step (no ``np.zeros_like`` churn); products
    run on the ``(|S|, -1)`` flattened view, shifts on the
    ``(-1, cells)`` row view of the same memory.
    """

    def __init__(self, backend: KernelBackend, operator: StepOperator,
                 impulses: Sequence[Tuple[int, StepOperator]],
                 plan: ShiftPlan, clamp: bool, state: np.ndarray,
                 forward: bool):
        self._backend = backend
        self._operator = operator
        self._impulses = tuple(impulses)
        self._plan = plan
        self._clamp = clamp
        self._forward = forward
        self._state = np.ascontiguousarray(state, dtype=float)
        self._spare = np.empty_like(self._state)
        self._scratch: Optional[np.ndarray] = (
            np.empty_like(self._state) if self._impulses else None)
        self._extra: Optional[np.ndarray] = (
            np.empty_like(self._state)
            if any(op.in_place for _, op in self._impulses) else None)

    @property
    def state(self) -> np.ndarray:
        """The current weight/density array (rotating buffer -- copy
        anything read between steps)."""
        return self._state

    @property
    def products_per_step(self) -> int:
        """Matrix products per :meth:`step` (for ``matvec_count``)."""
        return 1 + len(self._impulses)

    @staticmethod
    def _rows(array: np.ndarray) -> np.ndarray:
        return array.reshape(-1, array.shape[-1])

    @staticmethod
    def _flat(array: np.ndarray) -> np.ndarray:
        return array.reshape(array.shape[0], -1)

    def step(self) -> np.ndarray:
        """Advance one step; returns the new state array."""
        if self._forward:
            self._step_forward()
        else:
            self._step_adjoint()
        return self._state

    def _impulse_product(self, op: StepOperator,
                         shape: Tuple[int, ...]) -> np.ndarray:
        scratch = self._scratch
        assert scratch is not None
        if op.in_place:
            extra = self._extra
            assert extra is not None
            op.matmat(self._flat(scratch), out=self._flat(extra))
            return extra
        return op.matmat(self._flat(scratch)).reshape(shape)

    def _step_adjoint(self) -> None:
        state, spare = self._state, self._spare
        num_cells = state.shape[-1]
        product = self._operator.matmat(self._flat(state),
                                        out=self._flat(spare))
        merged = (spare if self._operator.in_place
                  else product.reshape(state.shape))
        for cells, op in self._impulses:
            scratch = self._scratch
            assert scratch is not None
            src = self._rows(state)
            dst = self._rows(scratch)
            dst[:, :num_cells - cells] = src[:, cells:]
            dst[:, num_cells - cells:] = 0.0
            merged += self._impulse_product(op, state.shape)
        self._backend.shift_down(self._rows(merged), self._rows(state),
                                 self._plan, self._clamp)
        # The shifted result lives in the old state buffer; the merged
        # buffer (spare, or the adopted sparse product) is free again.
        self._spare = merged

    def _step_forward(self) -> None:
        state, spare = self._state, self._spare
        num_cells = state.shape[-1]
        self._backend.shift_up(self._rows(state), self._rows(spare),
                               self._plan, self._clamp)
        product = self._operator.matmat(self._flat(spare),
                                        out=self._flat(state))
        density = (state if self._operator.in_place
                   else product.reshape(state.shape))
        for cells, op in self._impulses:
            scratch = self._scratch
            assert scratch is not None
            src = self._rows(spare)
            dst = self._rows(scratch)
            dst[:, :cells] = 0.0
            dst[:, cells:] = src[:, :num_cells - cells]
            density += self._impulse_product(op, state.shape)
        # `spare` keeps holding the shifted copy; it is overwritten
        # first thing next step, so it stays the companion buffer.
        self._state = density


class SericolaSeries:
    """Preallocated state of Sericola's column-aggregate recursion.

    Replaces the per-step list of ``(n+1, |S|)`` arrays with one
    ``(|S|, depth+1, m)`` buffer pair whose contiguous ``n * m``-column
    prefix feeds a *single* block product per step (the former ``m``
    per-level products), followed by the backend's triangular update
    into the swapped buffer.  ``u`` rides along as the plain transient
    iterate ``P^n 1_{S'}``.

    Each :meth:`advance` costs exactly two operator applications
    (``matvec`` for ``u``, ``matmat`` for the stacked levels) --
    engines count ``matvec_count += 2`` per step.
    """

    def __init__(self, backend: KernelBackend, operator: StepOperator,
                 indicator: np.ndarray, plan: SericolaPlan, depth: int):
        self._backend = backend
        self._operator = operator
        self._plan = plan
        n_states = int(indicator.shape[0])
        m = len(plan.levels) - 1
        self._m = m
        self._b = np.zeros((n_states, depth + 1, m))
        for g in range(1, m + 1):
            self._b[:, 0, g - 1] = np.where(plan.cls >= g, indicator,
                                            0.0)
        self._new = np.empty_like(self._b)
        self._u = np.asarray(indicator, dtype=float).copy()
        self._n = 0

    @property
    def u(self) -> np.ndarray:
        """The transient iterate ``P^n 1_{S'}`` after *n* advances."""
        return self._u

    @property
    def terms(self) -> int:
        """Number of series terms advanced so far."""
        return self._n

    def inner(self, h: int, mix: np.ndarray) -> np.ndarray:
        """``sum_k mix[k] * b(h, n, k)`` -- the binomially mixed inner
        term of level *h* at the current depth."""
        return self._b[:, :self._n + 1, h - 1] @ mix

    def advance(self) -> None:
        """One step ``n-1 -> n`` of the recursion (two products)."""
        n = self._n + 1
        m = self._m
        n_states = self._b.shape[0]
        flat = self._b.reshape(n_states, -1)[:, :n * m]
        u_next = self._operator.matvec(self._u)
        pb = self._operator.matmat(flat).reshape(n_states, n, m)
        self._backend.sericola_triangular(pb, self._new[:, :n + 1, :],
                                          u_next, self._plan, n)
        self._b, self._new = self._new, self._b
        self._u = u_next
        self._n = n


__all__ = [
    "DENSE_MAX_STATES", "DENSE_MAX_STATES_IF_DENSE", "DENSE_MIN_DENSITY",
    "DenseOperator", "DiscretizationPropagator", "KernelBackend",
    "Matrix", "OPERATOR_POLICIES", "SericolaPlan", "SericolaSeries",
    "ShiftPlan", "SparseOperator", "StepOperator",
    "build_sericola_plan", "build_shift_plan", "make_operator",
]
