"""Numerical substrate: Poisson weights, uniformisation, linear algebra.

The routines in this package implement the numerical recipes on which
the model-checking procedures rest:

* :mod:`~repro.numerics.poisson` -- Fox--Glynn style computation of
  Poisson probabilities and truncation points;
* :mod:`~repro.numerics.uniformization` -- transient analysis of CTMCs
  by uniformisation (Jensen's method / randomisation);
* :mod:`~repro.numerics.linear` -- sparse linear-system solvers
  (direct, Jacobi, Gauss--Seidel, power iteration);
* :mod:`~repro.numerics.dtmc` -- discrete-time auxiliaries (embedded
  chain, reachability probabilities).
"""

from repro.numerics.poisson import (PoissonWeights, poisson_weights,
                                    right_truncation_point)
from repro.numerics.uniformization import (
    transient_distribution, transient_matrix,
    transient_target_probabilities, transient_target_probabilities_sweep,
    expected_accumulated_reward, expected_instantaneous_reward)
from repro.numerics.linear import (solve_linear_system,
                                   stationary_distribution)
from repro.numerics.dtmc import (embedded_dtmc,
                                 reachability_probabilities)

__all__ = [
    "PoissonWeights", "poisson_weights", "right_truncation_point",
    "transient_distribution", "transient_matrix",
    "transient_target_probabilities",
    "transient_target_probabilities_sweep",
    "expected_accumulated_reward", "expected_instantaneous_reward",
    "solve_linear_system", "stationary_distribution",
    "embedded_dtmc", "reachability_probabilities",
]
