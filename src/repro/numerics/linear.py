"""Sparse linear-system solvers and stationary distributions.

The model checker needs two kinds of linear algebra:

* solving ``A x = b`` for the unbounded-until probabilities (the
  "P0-type" properties of the paper, following Hansson & Jonsson);
* stationary distributions of CTMCs for the steady-state operator.

A direct sparse solver is the default; Jacobi and Gauss--Seidel
iterations are provided for large models and as independent
cross-checks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.ctmc.ctmc import CTMC
from repro.ctmc import graph
from repro.errors import ConvergenceError, ModelError, NumericalError


def solve_linear_system(matrix,
                        rhs,
                        method: str = "direct",
                        tolerance: float = 1e-12,
                        max_iterations: int = 100_000) -> np.ndarray:
    """Solve ``matrix @ x = rhs``.

    Parameters
    ----------
    matrix:
        Square sparse or dense matrix.
    rhs:
        Right-hand side vector.
    method:
        ``"direct"`` (sparse LU), ``"jacobi"`` or ``"gauss-seidel"``.
    tolerance:
        Maximum-norm residual target for the iterative methods.
    max_iterations:
        Iteration budget for the iterative methods.
    """
    A = matrix.tocsr() if sp.issparse(matrix) else sp.csr_matrix(
        np.asarray(matrix, dtype=float))
    b = np.asarray(rhs, dtype=float)
    n = A.shape[0]
    if A.shape != (n, n):
        raise NumericalError(f"matrix must be square, got {A.shape}")
    if b.shape != (n,):
        raise NumericalError(
            f"rhs has shape {b.shape}, expected ({n},)")

    if method == "direct":
        return np.asarray(spla.spsolve(A.tocsc(), b)).ravel()
    if method == "jacobi":
        return _jacobi(A, b, tolerance, max_iterations)
    if method == "gauss-seidel":
        return _gauss_seidel(A, b, tolerance, max_iterations)
    raise NumericalError(f"unknown linear solver {method!r}")


def _split_diagonal(A: sp.csr_matrix):
    diagonal = A.diagonal()
    if np.any(diagonal == 0.0):
        raise NumericalError(
            "iterative solvers require a non-zero diagonal")
    off = A - sp.diags(diagonal, format="csr")
    return diagonal, off.tocsr()


def _jacobi(A: sp.csr_matrix, b: np.ndarray,
            tolerance: float, max_iterations: int) -> np.ndarray:
    diagonal, off = _split_diagonal(A)
    x = np.zeros_like(b)
    for iteration in range(max_iterations):
        x_next = (b - off @ x) / diagonal
        if np.max(np.abs(x_next - x)) < tolerance:
            return x_next
        x = x_next
    raise ConvergenceError("Jacobi iteration did not converge",
                           iterations=max_iterations)


def _gauss_seidel(A: sp.csr_matrix, b: np.ndarray,
                  tolerance: float, max_iterations: int) -> np.ndarray:
    indptr, indices, data = A.indptr, A.indices, A.data
    diagonal = A.diagonal()
    if np.any(diagonal == 0.0):
        raise NumericalError(
            "iterative solvers require a non-zero diagonal")
    n = A.shape[0]
    x = np.zeros_like(b)
    for iteration in range(max_iterations):
        delta = 0.0
        for i in range(n):
            acc = b[i]
            dia = diagonal[i]
            for ptr in range(indptr[i], indptr[i + 1]):
                j = indices[ptr]
                if j != i:
                    acc -= data[ptr] * x[j]
            new = acc / dia
            delta = max(delta, abs(new - x[i]))
            x[i] = new
        if delta < tolerance:
            return x
    raise ConvergenceError("Gauss-Seidel iteration did not converge",
                           iterations=max_iterations)


def stationary_distribution(model: CTMC,
                            check_irreducible: bool = True) -> np.ndarray:
    """The stationary distribution of an irreducible CTMC.

    Solves ``pi Q = 0`` with the normalisation ``sum(pi) = 1`` by
    replacing one balance equation with the normalisation constraint.

    Raises :class:`~repro.errors.ModelError` when the chain is not
    irreducible (use :func:`bscc_stationary_distributions` for the
    general case).
    """
    n = model.num_states
    if check_irreducible:
        bottoms = graph.bottom_sccs(model)
        if len(bottoms) != 1 or len(bottoms[0]) != n:
            raise ModelError(
                "stationary_distribution requires an irreducible chain; "
                "use bscc_stationary_distributions instead")
    generator = model.generator_matrix().tocsc()
    # pi Q = 0  <=>  Q^T pi^T = 0; replace the last equation by sum = 1.
    system = generator.transpose().tolil()
    system[n - 1, :] = 1.0
    rhs = np.zeros(n)
    rhs[n - 1] = 1.0
    pi = np.asarray(spla.spsolve(system.tocsc(), rhs)).ravel()
    # Clean tiny numerical negatives.
    pi = np.where(np.abs(pi) < 1e-15, 0.0, pi)
    if np.any(pi < 0.0):
        raise NumericalError("stationary solve produced negative entries")
    return pi / pi.sum()


def bscc_stationary_distributions(model: CTMC):
    """Stationary distribution of every bottom SCC.

    Returns a list of ``(states, distribution)`` pairs where *states*
    is the sorted list of BSCC member indices and *distribution* is the
    conditional stationary distribution over those states.
    """
    results = []
    for component in graph.bottom_sccs(model):
        members = sorted(component)
        index = {s: i for i, s in enumerate(members)}
        sub = model.rate_matrix[members, :][:, members]
        sub_model = CTMC(sub)
        if len(members) == 1:
            pi = np.array([1.0])
        else:
            pi = stationary_distribution(sub_model, check_irreducible=False)
        results.append((members, pi))
    return results
