"""Transient analysis of CTMCs by uniformisation (randomisation).

Uniformisation (Jensen 1953, Gross/Miller 1984) turns the matrix
exponential into a Poisson mixture of DTMC powers:

    pi(t) = alpha e^{Q t} = sum_{k>=0} psi_k(lambda t) * alpha P^k

with ``P = I + Q / lambda`` for any ``lambda >= max_s E(s)`` and
``psi_k`` the Poisson probabilities.  Each step is a sparse
vector--matrix product, and the truncation error is controlled a priori
through the Poisson tail (see :mod:`repro.numerics.poisson`).

The module also provides Poisson-integrated quantities needed for
reward measures: the expected accumulated reward ``E[Y_t]`` uses

    int_0^t alpha e^{Q u} du = (1/lambda) sum_k T_{k+1} * alpha P^k

where ``T_k`` is the Poisson tail ``sum_{j>=k} psi_j(lambda t)``.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Union

import numpy as np

from repro.ctmc.ctmc import CTMC
from repro.errors import NumericalError
from repro.kernels import KernelBackend, get_backend
from repro.kernels.base import StepOperator, make_operator
from repro.numerics.poisson import poisson_weights
from repro.obs import OBS
from repro.obs import span as obs_span

Kernel = Union[str, KernelBackend, None]


def uniformized_operator(model: CTMC, rate: float,
                         transposed: bool = False,
                         policy: str = "auto") -> StepOperator:
    """The uniformised DTMC matrix wrapped as a cached step operator.

    Under the default ``"auto"`` policy small chains go dense (one
    BLAS call per series term) and large ones stay CSR -- see
    :func:`repro.kernels.make_operator`; the sparse/dense backends
    pin the representation through their
    :attr:`~repro.kernels.KernelBackend.operator_policy` instead.
    Cached per ``(model, rate, orientation)`` in the shared matrix
    cache; non-default policies get their own key element, since the
    representation then depends on the requesting backend.
    """
    # Imported lazily: repro.algorithms imports this module during its
    # own package initialisation.
    from repro.algorithms.cache import matrix_cache
    tag = "uniform-op-T" if transposed else "uniform-op"
    key = ((tag, model.fingerprint, float(rate)) if policy == "auto"
           else (tag, model.fingerprint, float(rate), policy))
    operator = matrix_cache.get(key)
    if operator is None:
        matrix = model.uniformized_dtmc_matrix(rate)
        if transposed:
            matrix = matrix.transpose().tocsr()
        operator = make_operator(matrix, policy=policy)
        matrix_cache.put(key, operator)
    return operator


def _step_histogram(backend: KernelBackend,
                    metrics_engine: Optional[str]):
    """The kernel-labelled per-step histogram, or ``None``."""
    if not OBS.enabled or metrics_engine is None:
        return None
    return OBS.metrics.histogram("repro_matvec_block_seconds",
                                 engine=metrics_engine,
                                 kernel=backend.name)


def _start_record(weights, **attributes):
    """Open a convergence record for a uniformisation loop (obs
    enabled only); returns ``(record, tail)`` or ``(None, None)``.

    The recorded residual is the remaining Poisson mass after each
    iteration -- the a-priori truncation error still outstanding."""
    if not OBS.enabled:
        return None, None
    record = OBS.convergence.start_series(
        "uniformisation_series", weights.right,
        rate=weights.rate, **attributes)
    return record, weights.tail_from()

# Maximum-norm threshold under which two successive uniformised vectors
# are considered equal for steady-state detection.
_STEADY_STATE_TOLERANCE_FACTOR = 1e-3


def _initial_vector(model: CTMC,
                    initial: Optional[Sequence[float]]) -> np.ndarray:
    if initial is None:
        return model.initial_distribution.copy()
    vector = np.asarray(initial, dtype=float)
    if vector.shape != (model.num_states,):
        raise NumericalError(
            f"initial vector has shape {vector.shape}, expected "
            f"({model.num_states},)")
    return vector.copy()


def transient_distribution(model: CTMC,
                           t: float,
                           initial: Optional[Sequence[float]] = None,
                           epsilon: float = 1e-12,
                           uniformization_rate: Optional[float] = None,
                           steady_state_detection: bool = True,
                           stats=None,
                           kernel: Kernel = None,
                           metrics_engine: Optional[str] = None
                           ) -> np.ndarray:
    """The state distribution ``pi(t)`` of *model* at time *t*.

    Parameters
    ----------
    model:
        The CTMC to analyse.
    t:
        Non-negative time horizon.
    initial:
        Initial distribution (defaults to the model's own); any
        non-negative vector is accepted, so sub-distributions can be
        propagated as well.
    epsilon:
        Bound on the truncation error (in total variation, per unit of
        initial mass).
    uniformization_rate:
        Override for the uniformisation rate ``lambda``; must be at
        least the maximal exit rate.
    steady_state_detection:
        Stop the series early once the uniformised vector has converged
        (the remaining Poisson mass then multiplies a fixed vector).
    stats:
        Optional counter object with ``matvec_count`` and
        ``propagation_steps`` attributes (e.g.
        :class:`repro.algorithms.cache.EngineStats`); the series length
        and the number of sparse products are added to it.
    """
    if t < 0.0:
        raise NumericalError(f"time must be >= 0, got {t}")
    vector = _initial_vector(model, initial)
    if t == 0.0 or model.num_states == 0:
        return vector
    rate = (model.max_exit_rate if uniformization_rate is None
            else float(uniformization_rate))
    if rate == 0.0:
        return vector  # no transitions at all
    backend = get_backend(kernel)
    operator = uniformized_operator(model, rate,
                                    policy=backend.operator_policy)
    hist = _step_histogram(backend, metrics_engine)
    weights = poisson_weights(rate * t, epsilon=epsilon)

    result = np.zeros_like(vector)
    tolerance = (epsilon * _STEADY_STATE_TOLERANCE_FACTOR
                 / max(1.0, float(len(weights))))
    record, tail = _start_record(weights, variant="forward")
    with obs_span("uniformisation_series", depth=weights.right,
                  kind="forward"):
        for k in range(weights.right + 1):
            if k >= weights.left:
                result += weights.weights[k - weights.left] * vector
            if record is not None:
                record.record(k, weights.remaining_after(k, tail))
            if k == weights.right:
                break
            if hist is not None:
                block_start = time.perf_counter()
            next_vector = operator.rmatvec(vector)
            if hist is not None:
                hist.observe(time.perf_counter() - block_start)
            if stats is not None:
                stats.matvec_count += 1
                stats.propagation_steps += 1
            if steady_state_detection and k >= weights.left:
                if np.max(np.abs(next_vector - vector)) < tolerance:
                    # Steady state reached: the remaining Poisson mass
                    # all multiplies (approximately) the same vector.
                    remaining = weights.weights[
                        k + 1 - weights.left:].sum()
                    result += remaining * next_vector
                    return result
            vector = next_vector
    return result


def transient_target_probabilities(model: CTMC,
                                   t: float,
                                   indicator: Sequence[float],
                                   epsilon: float = 1e-12,
                                   uniformization_rate: Optional[float] = None,
                                   stats=None,
                                   kernel: Kernel = None,
                                   metrics_engine: Optional[str] = None
                                   ) -> np.ndarray:
    """Per-initial-state probability of being in a target set at time *t*.

    Returns the vector ``v`` with ``v[i] = Pr{X_t in S' | X_0 = i}``
    where ``S'`` is described by its 0/1 *indicator* vector.  Computed
    with the *backward* uniformisation series ``sum_k psi_k P^k 1_{S'}``
    -- one run covers every initial state, the dual of
    :func:`transient_distribution`.  Any real-valued vector is accepted,
    so this also evaluates ``E[f(X_t) | X_0 = i]`` for bounded ``f``.

    *stats*, when given, is any object with ``matvec_count`` and
    ``propagation_steps`` attributes (e.g.
    :class:`repro.algorithms.cache.EngineStats`); the series length and
    the number of sparse products are added to it.
    """
    if t < 0.0:
        raise NumericalError(f"time must be >= 0, got {t}")
    vector = np.asarray(indicator, dtype=float)
    if vector.shape != (model.num_states,):
        raise NumericalError(
            f"indicator has shape {vector.shape}, expected "
            f"({model.num_states},)")
    vector = vector.copy()
    rate = (model.max_exit_rate if uniformization_rate is None
            else float(uniformization_rate))
    if t == 0.0 or rate == 0.0:
        return vector
    backend = get_backend(kernel)
    operator = uniformized_operator(model, rate,
                                    policy=backend.operator_policy)
    hist = _step_histogram(backend, metrics_engine)
    weights = poisson_weights(rate * t, epsilon=epsilon)
    result = np.zeros_like(vector)
    record, tail = _start_record(weights, variant="backward")
    with obs_span("uniformisation_series", depth=weights.right,
                  kind="backward"):
        for k in range(weights.right + 1):
            if k >= weights.left:
                result += weights.weights[k - weights.left] * vector
            if record is not None:
                record.record(k, weights.remaining_after(k, tail))
            if k == weights.right:
                break
            if hist is not None:
                block_start = time.perf_counter()
            vector = operator.matvec(vector)
            if hist is not None:
                hist.observe(time.perf_counter() - block_start)
            if stats is not None:
                stats.matvec_count += 1
                stats.propagation_steps += 1
    return result


def transient_target_probabilities_sweep(model: CTMC,
                                         times: Sequence[float],
                                         indicator: Sequence[float],
                                         epsilon: float = 1e-12,
                                         uniformization_rate:
                                         Optional[float] = None,
                                         stats=None,
                                         kernel: Kernel = None,
                                         metrics_engine: Optional[str]
                                         = None) -> np.ndarray:
    """:func:`transient_target_probabilities` for a whole list of
    time bounds from **one** shared backward series.

    The iterates ``P^k 1_{S'}`` of the backward uniformisation series
    do not depend on ``t`` -- only the Poisson weights do -- so a sweep
    over *times* runs the series once to the largest truncation point
    and re-weights every iterate per time bound.  Returns the
    ``(len(times), |S|)`` array whose row ``i`` equals the
    single-``t`` call with ``times[i]`` (same weights, same iterates --
    the values are arithmetically identical).
    """
    vector = np.asarray(indicator, dtype=float)
    if vector.shape != (model.num_states,):
        raise NumericalError(
            f"indicator has shape {vector.shape}, expected "
            f"({model.num_states},)")
    times = [float(t) for t in times]
    for t in times:
        if t < 0.0:
            raise NumericalError(f"time must be >= 0, got {t}")
    vector = vector.copy()
    results = np.zeros((len(times), model.num_states))
    rate = (model.max_exit_rate if uniformization_rate is None
            else float(uniformization_rate))
    if rate == 0.0:
        results[:] = vector
        return results
    weight_rows = []
    for i, t in enumerate(times):
        if t == 0.0:
            results[i] = vector
            weight_rows.append(None)
        else:
            weight_rows.append(poisson_weights(rate * t, epsilon=epsilon))
    depth = max((w.right for w in weight_rows if w is not None),
                default=0)
    backend = get_backend(kernel)
    operator = uniformized_operator(model, rate,
                                    policy=backend.operator_policy)
    hist = _step_histogram(backend, metrics_engine)
    with obs_span("uniformisation_series", depth=depth,
                  kind="backward_sweep", points=len(times)):
        for k in range(depth + 1):
            for i, weights in enumerate(weight_rows):
                if weights is not None \
                        and weights.left <= k <= weights.right:
                    results[i] += (weights.weights[k - weights.left]
                                   * vector)
            if k == depth:
                break
            if hist is not None:
                block_start = time.perf_counter()
            vector = operator.matvec(vector)
            if hist is not None:
                hist.observe(time.perf_counter() - block_start)
            if stats is not None:
                stats.matvec_count += 1
                stats.propagation_steps += 1
    return results


def transient_matrix(model: CTMC,
                     t: float,
                     epsilon: float = 1e-12,
                     uniformization_rate: Optional[float] = None,
                     stats=None) -> np.ndarray:
    """All-pairs transient probabilities ``Pi(t)[i, j] = Pr{X_t = j | X_0 = i}``.

    Computed in a **single** uniformisation pass over a dense identity
    block: the iterates ``P^k`` applied to ``I`` are accumulated with
    the Poisson weights, so every initial state advances through one
    sparse x dense product per series term instead of ``|S|``
    independent vector runs.  Dense output of shape ``(n, n)``.
    """
    if t < 0.0:
        raise NumericalError(f"time must be >= 0, got {t}")
    n = model.num_states
    rate = (model.max_exit_rate if uniformization_rate is None
            else float(uniformization_rate))
    if t == 0.0 or n == 0 or rate == 0.0:
        return np.eye(n)
    # Propagate the transposed block: column i holds the distribution
    # from initial state i, and pi' = pi P transposes to P^T pi^T.
    operator = uniformized_operator(model, rate, transposed=True)
    weights = poisson_weights(rate * t, epsilon=epsilon)
    block = np.eye(n)
    result = np.zeros((n, n))
    with obs_span("uniformisation_series", depth=weights.right,
                  kind="matrix"):
        for k in range(weights.right + 1):
            if k >= weights.left:
                result += weights.weights[k - weights.left] * block
            if k == weights.right:
                break
            block = operator.matmat(block)
            if stats is not None:
                stats.matvec_count += 1
                stats.propagation_steps += 1
    return result.T


def expected_instantaneous_reward(model,
                                  t: float,
                                  rewards: Optional[Sequence[float]] = None,
                                  epsilon: float = 1e-12) -> float:
    """Expected reward rate at time *t*: ``E[rho(X_t)]``.

    *model* is an MRM (its reward vector is used) unless *rewards*
    overrides the reward structure.
    """
    rho = (np.asarray(rewards, dtype=float)
           if rewards is not None else model.rewards)
    pi = transient_distribution(model, t, epsilon=epsilon)
    return float(pi @ rho)


def expected_accumulated_reward(model,
                                t: float,
                                rewards: Optional[Sequence[float]] = None,
                                epsilon: float = 1e-12,
                                stats=None) -> float:
    """Expected accumulated reward ``E[Y_t] = int_0^t E[rho(X_u)] du``.

    Uses the Poisson-tail formulation of the integral of the transient
    distribution, so the cost is one uniformisation run.  *stats*, when
    given, receives the series length and sparse-product count the way
    :func:`transient_target_probabilities` does.
    """
    if t < 0.0:
        raise NumericalError(f"time must be >= 0, got {t}")
    rho = (np.asarray(rewards, dtype=float)
           if rewards is not None else model.rewards)
    if t == 0.0:
        return 0.0
    rate = model.max_exit_rate
    if rate == 0.0:
        # No transitions: the chain sits in its initial distribution.
        return float(model.initial_distribution @ rho) * t

    operator = uniformized_operator(model, rate)
    # Make the relative error of the integral match epsilon: the
    # integral is <= t * max(rho), and each tail coefficient errs by at
    # most the Poisson tail mass.
    weights = poisson_weights(rate * t, epsilon=epsilon)
    tails = weights.tail_from()

    vector = model.initial_distribution.copy()
    total = 0.0
    # Coefficient of alpha P^k is tail(k+1) / lambda; for k < left the
    # tail is 1.
    with obs_span("uniformisation_series", depth=weights.right,
                  kind="accumulated_reward"):
        for k in range(weights.right + 1):
            if k + 1 <= weights.left:
                tail = 1.0
            else:
                idx = k + 1 - weights.left
                tail = float(tails[idx]) if idx < len(tails) else 0.0
            total += tail * float(vector @ rho)
            if k < weights.right:
                vector = operator.rmatvec(vector)
                if stats is not None:
                    stats.matvec_count += 1
                    stats.propagation_steps += 1
    # Account for the (up to `left`) leading terms whose tail is 1 but
    # which the loop already covers, and normalise by the rate.
    return total / rate
