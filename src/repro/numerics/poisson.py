"""Poisson probabilities for uniformisation (Fox--Glynn style).

Uniformisation expresses the transient behaviour of a CTMC as a Poisson
mixture of the powers of a DTMC matrix.  The numerically delicate part
is the computation of the Poisson probabilities

    psi_k(q) = e^{-q} q^k / k!

for large ``q`` without underflow (``e^{-q}`` underflows for
``q > 745``) and with a certified truncation error.  We follow the
strategy of Fox and Glynn: anchor the recurrence at the mode of the
distribution, extend left and right until the terms are negligible
relative to the requested accuracy, and normalise by the accumulated
total weight.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import NumericalError
from repro.obs import OBS

# Weight arrays are pure functions of (rate, epsilon) and every
# uniformisation-based procedure recomputes them per call; sweeps over
# t or over models with equal uniformisation rates hit the same pairs
# over and over, so the arrays are memoised process-wide.  Entries are
# frozen dataclasses holding read-only arrays -- safe to share.
_WEIGHT_CACHE: "OrderedDict[tuple, PoissonWeights]" = OrderedDict()
_WEIGHT_CACHE_MAXSIZE = 512
_WEIGHT_CACHE_STATS = {"hits": 0, "misses": 0}


def clear_poisson_cache() -> None:
    """Empty the module-level Fox--Glynn weight cache."""
    _WEIGHT_CACHE.clear()
    _WEIGHT_CACHE_STATS["hits"] = 0
    _WEIGHT_CACHE_STATS["misses"] = 0


def poisson_cache_info() -> Dict[str, int]:
    """Size and lifetime hit/miss counts of the weight cache."""
    return {"size": len(_WEIGHT_CACHE),
            "maxsize": _WEIGHT_CACHE_MAXSIZE,
            "hits": _WEIGHT_CACHE_STATS["hits"],
            "misses": _WEIGHT_CACHE_STATS["misses"]}


@dataclass(frozen=True)
class PoissonWeights:
    """Truncated, normalised Poisson probabilities.

    Attributes
    ----------
    rate:
        The Poisson rate ``q`` (for uniformisation, ``lambda * t``).
    left, right:
        The truncation window; ``weights[i]`` approximates the Poisson
        probability of ``left + i``.
    weights:
        Normalised probabilities over the window (they sum to 1, hence
        slightly over-estimate each true probability by the discarded
        tail mass, which is below the requested epsilon).
    epsilon:
        The bound on the total discarded tail mass.
    """

    rate: float
    left: int
    right: int
    weights: np.ndarray
    epsilon: float

    def __len__(self) -> int:
        return self.right - self.left + 1

    def probability(self, k: int) -> float:
        """The (normalised) Poisson probability of *k* (0 outside window)."""
        if self.left <= k <= self.right:
            return float(self.weights[k - self.left])
        return 0.0

    def tail_from(self) -> np.ndarray:
        """Array ``T`` with ``T[i] = sum_{j >= i} weights[j]``.

        Useful for integrating uniformisation series, where the
        coefficient of the ``k``-th DTMC power in ``int_0^t pi(u) du``
        is the Poisson *tail* beyond ``k`` divided by the rate.
        """
        return np.cumsum(self.weights[::-1])[::-1]

    def remaining_after(self, n: int,
                        tail: Optional[np.ndarray] = None) -> float:
        """Normalised mass beyond term *n*: ``sum_{k > n} weights[k]``.

        This is the truncation error still outstanding after iteration
        *n* of a uniformisation series whose inner terms are bounded by
        one -- the residual the convergence telemetry
        (:mod:`repro.obs.convergence`) records per iteration.  Loops
        should pass the precomputed :meth:`tail_from` array as *tail*
        to keep the call O(1).
        """
        index = n + 1 - self.left
        if index <= 0:
            return 1.0
        if tail is None:
            tail = self.tail_from()
        if index >= len(tail):
            return 0.0
        return float(tail[index])


def poisson_weights(rate: float, epsilon: float = 1e-12) -> PoissonWeights:
    """Compute truncated Poisson probabilities with tail mass <= *epsilon*.

    Parameters
    ----------
    rate:
        Poisson rate ``q >= 0``.
    epsilon:
        Bound on the discarded probability mass (left and right tails
        together).

    Notes
    -----
    The recurrence ``psi_{k+1} = psi_k * q / (k+1)`` is anchored with
    weight 1 at the mode ``floor(q)``, so no intermediate value can
    overflow and underflow only affects terms that are at least thirty
    orders of magnitude below the requested accuracy.
    """
    if rate < 0.0 or not math.isfinite(rate):
        raise NumericalError(f"Poisson rate must be finite and >= 0, "
                             f"got {rate}")
    if not 0.0 < epsilon < 1.0:
        raise NumericalError(f"epsilon must be in (0, 1), got {epsilon}")

    key = (float(rate), float(epsilon))
    cached = _WEIGHT_CACHE.get(key)
    if cached is not None:
        _WEIGHT_CACHE.move_to_end(key)
        _WEIGHT_CACHE_STATS["hits"] += 1
        return cached

    start = time.perf_counter() if OBS.enabled else None
    computed = _compute_weights(rate, epsilon)
    if start is not None:
        OBS.metrics.histogram("repro_fox_glynn_seconds").observe(
            time.perf_counter() - start)
        OBS.metrics.gauge(
            "repro_fox_glynn_right_point").update_max(computed.right)
    return _cache_put(key, computed)


def _compute_weights(rate: float, epsilon: float) -> PoissonWeights:
    """The uncached Fox--Glynn computation behind :func:`poisson_weights`."""
    if rate == 0.0:
        return PoissonWeights(rate=0.0, left=0, right=0,
                              weights=np.array([1.0]), epsilon=epsilon)

    mode = int(math.floor(rate))
    # Terms this far below the mode weight are irrelevant even after
    # summing over the whole window.
    window_hint = 4.0 * math.sqrt(rate) + 20.0
    cutoff = (epsilon / window_hint) * 1e-6

    # Extend right from the mode.
    right_weights = [1.0]
    weight = 1.0
    k = mode
    while weight >= cutoff:
        k += 1
        weight *= rate / k
        right_weights.append(weight)
        if k > mode + 100 and k > 10 * rate:
            break
    right = k

    # Extend left from the mode.
    left_weights = []
    weight = 1.0
    k = mode
    while k > 0:
        weight *= k / rate
        k -= 1
        if weight < cutoff:
            break
        left_weights.append(weight)

    weights = np.array(left_weights[::-1] + right_weights)
    left = mode - len(left_weights)
    total = weights.sum()
    weights /= total

    # Now trim the window so that the *represented* tails outside
    # [left', right'] stay below epsilon (split between both sides).
    cumulative = np.cumsum(weights)
    half = epsilon / 2.0
    trim_left = int(np.searchsorted(cumulative, half, side="right"))
    # keep indices trim_left .. trim_right
    upper = 1.0 - half
    trim_right = int(np.searchsorted(cumulative, upper, side="left"))
    trim_right = min(trim_right, len(weights) - 1)
    trimmed = weights[trim_left:trim_right + 1].copy()
    trimmed /= trimmed.sum()
    return PoissonWeights(rate=rate,
                          left=left + trim_left,
                          right=left + trim_right,
                          weights=trimmed,
                          epsilon=epsilon)


def _cache_put(key: tuple, value: PoissonWeights) -> PoissonWeights:
    """Freeze and memoise a freshly computed weight object."""
    value.weights.flags.writeable = False
    _WEIGHT_CACHE_STATS["misses"] += 1
    _WEIGHT_CACHE[key] = value
    _WEIGHT_CACHE.move_to_end(key)
    while len(_WEIGHT_CACHE) > _WEIGHT_CACHE_MAXSIZE:
        _WEIGHT_CACHE.popitem(last=False)
    return value


def right_truncation_point(rate: float, epsilon: float) -> int:
    """Smallest ``N`` with ``sum_{n=0}^{N} e^{-q} q^n / n! > 1 - epsilon``.

    This is the a-priori step bound used by the occupation-time
    algorithm (Section 4.4 of the paper): with ``q = lambda * t``,
    truncating the uniformisation series after ``N`` steps keeps the
    error below *epsilon* because every inner sum is bounded by one.
    """
    if rate < 0.0 or not math.isfinite(rate):
        raise NumericalError(f"Poisson rate must be finite and >= 0, "
                             f"got {rate}")
    if not 0.0 < epsilon < 1.0:
        raise NumericalError(f"epsilon must be in (0, 1), got {epsilon}")
    if rate == 0.0:
        return 0

    # Work with unnormalised weights anchored at the mode, accumulate
    # until the remaining (represented) mass drops below epsilon.
    full = poisson_weights(rate, epsilon=min(epsilon * 1e-6, 1e-13))
    cumulative = np.cumsum(full.weights)
    # Probability mass of 0..left-1 is below the tiny internal epsilon,
    # so cumulative[i] is (up to that) the CDF at full.left + i.
    index = int(np.searchsorted(cumulative, 1.0 - epsilon, side="left"))
    if index >= len(cumulative):
        raise NumericalError("failed to locate truncation point")
    return full.left + index
