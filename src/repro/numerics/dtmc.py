"""Discrete-time auxiliaries: embedded chains and reachability.

The embedded (jump) DTMC of a CTMC has transition probabilities
``P[s, s'] = R[s, s'] / E(s)`` for non-absorbing ``s``; absorbing
states self-loop.  Unbounded until probabilities of the CTMC coincide
with reachability probabilities of the embedded DTMC, which reduces to
a sparse linear system after the Prob0/Prob1 precomputation.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

import numpy as np
import scipy.sparse as sp

from repro.ctmc.ctmc import CTMC
from repro.ctmc import graph
from repro.numerics.linear import solve_linear_system


def embedded_dtmc(model: CTMC) -> sp.csr_matrix:
    """The jump-chain matrix of *model* (absorbing states self-loop)."""
    exit_rates = model.exit_rates
    inverse = np.where(exit_rates > 0.0, 1.0 / np.where(exit_rates > 0.0,
                                                        exit_rates, 1.0), 0.0)
    jump = sp.diags(inverse, format="csr") @ model.rate_matrix
    absorbing = np.flatnonzero(exit_rates == 0.0)
    if absorbing.size:
        loops = sp.coo_matrix(
            (np.ones(absorbing.size), (absorbing, absorbing)),
            shape=jump.shape)
        jump = (jump + loops.tocsr()).tocsr()
    return jump.tocsr()


def reachability_probabilities(model: CTMC,
                               phi: Set[int],
                               psi: Set[int],
                               method: str = "direct",
                               tolerance: float = 1e-12) -> np.ndarray:
    """Per-state probability of ``phi U psi`` (no time/reward bounds).

    Implements the Hansson--Jonsson procedure referenced by the paper
    for P0-type properties: Prob0/Prob1 graph precomputation followed
    by one sparse linear solve over the remaining "maybe" states.
    """
    n = model.num_states
    prob0 = graph.prob0_states(model, phi, psi)
    prob1 = graph.prob1_states(model, phi, psi)
    result = np.zeros(n)
    for s in prob1:
        result[s] = 1.0
    maybe = sorted(set(range(n)) - prob0 - prob1)
    if not maybe:
        return result

    jump = embedded_dtmc(model)
    index = {s: i for i, s in enumerate(maybe)}
    sub = jump[maybe, :][:, maybe]
    # x = P_maybe x + b,   b[s] = sum_{s' in prob1} P[s, s']
    prob1_list = sorted(prob1)
    if prob1_list:
        b = np.asarray(
            jump[maybe, :][:, prob1_list].sum(axis=1)).ravel()
    else:
        b = np.zeros(len(maybe))
    system = sp.identity(len(maybe), format="csr") - sub
    solution = solve_linear_system(system, b, method=method,
                                   tolerance=tolerance)
    for s, i in index.items():
        result[s] = min(1.0, max(0.0, float(solution[i])))
    return result
