"""Sampling timed paths through a Markov reward model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.ctmc.mrm import MarkovRewardModel
from repro.errors import NumericalError


@dataclass(frozen=True)
class PathStep:
    """One sojourn of a simulated path."""
    state: int
    entry_time: float
    sojourn: float          # may be cut short by the horizon
    reward_before: float    # accumulated reward when entering the state
    entry_impulse: float = 0.0  # impulse earned by the entering jump

    @property
    def exit_time(self) -> float:
        return self.entry_time + self.sojourn


@dataclass
class SimulatedPath:
    """A finite prefix of a timed path, up to a time horizon.

    The path is an alternating sequence ``s0 t0 s1 t1 ...`` as in
    Section 2.2 of the paper; rewards accumulate at rate ``rho(s_i)``
    during each sojourn.
    """
    steps: List[PathStep]
    horizon: float
    final_reward: float

    def state_at(self, time: float) -> int:
        """The state occupied at *time* (<= horizon)."""
        if not 0.0 <= time <= self.horizon:
            raise NumericalError(f"time {time} outside [0, {self.horizon}]")
        for step in self.steps:
            if time < step.exit_time or step is self.steps[-1]:
                if time >= step.entry_time:
                    return step.state
        return self.steps[-1].state

    def reward_at(self, time: float, rewards: np.ndarray) -> float:
        """Accumulated reward ``Y_time`` along this path (including
        the impulses of the jumps taken up to *time*)."""
        total = 0.0
        for step in self.steps:
            if time <= step.entry_time:
                break
            total += step.entry_impulse
            duration = min(time, step.exit_time) - step.entry_time
            total += duration * rewards[step.state]
        return total

    def first_hit(self, targets: "set[int]") -> Optional[PathStep]:
        """The first step entering a state in *targets* (or None)."""
        for step in self.steps:
            if step.state in targets:
                return step
        return None


class PathSimulator:
    """Samples paths of an MRM with a NumPy random generator.

    Parameters
    ----------
    model:
        The MRM to simulate.
    seed:
        Seed (or a ``numpy.random.Generator``) for reproducibility.
    """

    def __init__(self, model: MarkovRewardModel, seed=None):
        self.model = model
        self._rng = (seed if isinstance(seed, np.random.Generator)
                     else np.random.default_rng(seed))
        # Pre-extract the jump structure for speed.
        matrix = model.rate_matrix
        self._indptr = matrix.indptr
        self._indices = matrix.indices
        self._data = matrix.data
        self._exit = model.exit_rates
        self._rewards = model.rewards
        self._impulses = (model.impulse_matrix
                          if getattr(model, "has_impulse_rewards", False)
                          else None)

    def sample_initial_state(self) -> int:
        alpha = self.model.initial_distribution
        return int(self._rng.choice(len(alpha), p=alpha))

    def sample_path(self,
                    horizon: float,
                    initial_state: Optional[int] = None) -> SimulatedPath:
        """Sample one path up to the time *horizon*."""
        if horizon < 0.0:
            raise NumericalError(f"horizon must be >= 0, got {horizon}")
        state = (self.sample_initial_state() if initial_state is None
                 else int(initial_state))
        clock = 0.0
        accumulated = 0.0
        impulse = 0.0
        steps: List[PathStep] = []
        while True:
            accumulated += impulse
            rate = self._exit[state]
            if rate == 0.0:
                sojourn = horizon - clock
            else:
                sojourn = min(self._rng.exponential(1.0 / rate),
                              horizon - clock)
            steps.append(PathStep(state=state, entry_time=clock,
                                  sojourn=sojourn,
                                  reward_before=accumulated,
                                  entry_impulse=impulse))
            accumulated += sojourn * self._rewards[state]
            clock += sojourn
            if clock >= horizon or rate == 0.0:
                break
            begin, end = self._indptr[state], self._indptr[state + 1]
            weights = self._data[begin:end]
            choice = self._rng.choice(end - begin,
                                      p=weights / weights.sum())
            next_state = int(self._indices[begin + choice])
            impulse = (float(self._impulses[state, next_state])
                       if self._impulses is not None else 0.0)
            state = next_state
        return SimulatedPath(steps=steps, horizon=horizon,
                             final_reward=accumulated)

    def sample_paths(self, count: int, horizon: float,
                     initial_state: Optional[int] = None
                     ) -> Iterator[SimulatedPath]:
        """Yield *count* independent paths."""
        for _ in range(count):
            yield self.sample_path(horizon, initial_state=initial_state)
