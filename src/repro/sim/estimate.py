"""Statistical estimation of path-formula probabilities.

Estimators sample independent paths and report point estimates with
normal-approximation confidence intervals; they are the library's
independent cross-check of the numerical engines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Set

import numpy as np

from repro.ctmc.mrm import MarkovRewardModel
from repro.logic.intervals import Interval
from repro.sim.paths import PathSimulator


@dataclass(frozen=True)
class Estimate:
    """A Monte-Carlo estimate with its confidence interval.

    Attributes
    ----------
    value:
        Point estimate (sample mean).
    half_width:
        Half width of the (normal-approximation) confidence interval.
    samples:
        Number of independent samples used.
    confidence:
        The confidence level the half width corresponds to.
    """
    value: float
    half_width: float
    samples: int
    confidence: float = 0.99

    @property
    def lower(self) -> float:
        return max(0.0, self.value - self.half_width)

    @property
    def upper(self) -> float:
        return min(1.0, self.value + self.half_width)

    def covers(self, truth: float) -> bool:
        """Whether *truth* lies inside the confidence interval."""
        return self.lower <= truth <= self.upper

    def __str__(self) -> str:
        return (f"{self.value:.6f} +- {self.half_width:.6f} "
                f"({self.samples} samples)")


_Z_SCORES = {0.90: 1.6449, 0.95: 1.96, 0.99: 2.5758, 0.999: 3.2905}


def _from_successes(successes: int, samples: int,
                    confidence: float) -> Estimate:
    z = _Z_SCORES.get(confidence)
    if z is None:
        # Fallback via the error function for non-standard levels.
        z = math.sqrt(2.0) * _inverse_erf(confidence)
    mean = successes / samples
    deviation = math.sqrt(max(mean * (1.0 - mean), 1.0 / samples)
                          / samples)
    return Estimate(value=mean, half_width=z * deviation,
                    samples=samples, confidence=confidence)


def _inverse_erf(p: float) -> float:
    from scipy.special import erfinv
    return float(erfinv(p))


def estimate_joint_probability(model: MarkovRewardModel,
                               t: float,
                               r: float,
                               target: Set[int],
                               samples: int = 10_000,
                               seed=None,
                               initial_state: Optional[int] = None,
                               confidence: float = 0.99) -> Estimate:
    """Estimate ``Pr{Y_t <= r, X_t in target}`` by simulation."""
    simulator = PathSimulator(model, seed=seed)
    successes = 0
    for path in simulator.sample_paths(samples, t,
                                       initial_state=initial_state):
        final_step = path.steps[-1]
        if final_step.state in target and path.final_reward <= r:
            successes += 1
    return _from_successes(successes, samples, confidence)


def estimate_until_probability(model: MarkovRewardModel,
                               phi: Set[int],
                               psi: Set[int],
                               time: Interval,
                               reward: Interval,
                               samples: int = 10_000,
                               seed=None,
                               initial_state: Optional[int] = None,
                               confidence: float = 0.99,
                               horizon: Optional[float] = None) -> Estimate:
    """Estimate ``Pr(phi U_I^J psi)`` by simulation.

    For unbounded time intervals a finite simulation *horizon* must be
    supplied; paths still undecided at the horizon count as failures,
    so the estimate is then a lower bound.
    """
    if horizon is None:
        if math.isinf(time.upper):
            raise ValueError("simulating an unbounded until needs an "
                             "explicit horizon")
        horizon = time.upper
    simulator = PathSimulator(model, seed=seed)
    rewards = model.rewards
    successes = 0
    for path in simulator.sample_paths(samples, horizon,
                                       initial_state=initial_state):
        if _path_satisfies_until(path, phi, psi, time, reward, rewards):
            successes += 1
    return _from_successes(successes, samples, confidence)


def _path_satisfies_until(path, phi: Set[int], psi: Set[int],
                          time: Interval, reward: Interval,
                          rewards: np.ndarray) -> bool:
    """Decide ``phi U_I^J psi`` on a sampled path prefix.

    The satisfaction time can be any instant of a sojourn in a
    psi-state; within one sojourn both the elapsed time and the
    accumulated reward grow linearly, so an interval intersection
    decides whether an admissible instant exists.
    """
    for step in path.steps:
        if step.state in psi:
            # Candidate instants: [entry, exit) of this sojourn.
            lo_t = max(step.entry_time, time.lower)
            hi_t = min(step.exit_time, time.upper)
            if lo_t <= hi_t:
                rate = rewards[step.state]
                reward_lo = step.reward_before + rate * (
                    lo_t - step.entry_time)
                reward_hi = step.reward_before + rate * (
                    hi_t - step.entry_time)
                if not (reward_hi < reward.lower
                        or reward_lo > reward.upper):
                    return True
        if step.state not in phi:
            return False
    return False


def estimate_accumulated_reward_cdf(model: MarkovRewardModel,
                                    t: float,
                                    r: float,
                                    samples: int = 10_000,
                                    seed=None,
                                    initial_state: Optional[int] = None,
                                    confidence: float = 0.99) -> Estimate:
    """Estimate Meyer's performability distribution ``Pr{Y_t <= r}``."""
    return estimate_joint_probability(
        model, t, r, set(range(model.num_states)), samples=samples,
        seed=seed, initial_state=initial_state, confidence=confidence)
