"""Monte-Carlo simulation of Markov reward models.

A discrete-event path simulator serving as an independent validation
oracle for the numerical engines: it samples timed paths, accumulates
rewards, and estimates path-formula probabilities with confidence
intervals.  (The paper validates its three procedures against each
other; the simulator adds a fourth, statistically independent check.)
"""

from repro.sim.paths import PathSimulator, SimulatedPath, PathStep
from repro.sim.estimate import (Estimate, estimate_joint_probability,
                                estimate_until_probability,
                                estimate_accumulated_reward_cdf)

__all__ = ["PathSimulator", "SimulatedPath", "PathStep",
           "Estimate", "estimate_joint_probability",
           "estimate_until_probability",
           "estimate_accumulated_reward_cdf"]
