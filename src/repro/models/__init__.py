"""Ready-made models: the paper's case study and synthetic workloads."""

from repro.models.adhoc import (build_adhoc_srn, adhoc_model,
                                reduced_q3_model, Q1, Q2, Q3)
from repro.models import workloads

__all__ = ["build_adhoc_srn", "adhoc_model", "reduced_q3_model",
           "Q1", "Q2", "Q3", "workloads"]
