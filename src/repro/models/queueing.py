"""Queueing models with breakdowns, as stochastic reward nets.

A classic performability setting complementing the paper's case study:
an M/M/1/K queue whose server breaks down and is repaired.  Rate
rewards model the energy drawn by the busy server; impulse rewards
model the per-repair cost -- exercising the SRN substrate (inhibitor
arcs, marking-dependent rates, impulses) end to end.
"""

from __future__ import annotations

from repro.ctmc.mrm import MarkovRewardModel
from repro.srn.net import StochasticRewardNet
from repro.srn.reachability import build_mrm


def mm1_breakdown_srn(capacity: int = 5,
                      arrival_rate: float = 1.0,
                      service_rate: float = 2.0,
                      failure_rate: float = 0.05,
                      repair_rate: float = 0.5,
                      busy_power: float = 3.0,
                      repair_cost: float = 10.0
                      ) -> StochasticRewardNet:
    """An M/M/1/K queue with server breakdowns as an SRN.

    Places: ``queue`` (jobs waiting/in service), ``up`` / ``down``
    (server health).  Arrivals are inhibited at *capacity*; service
    requires the server up; failures may strike any time the server is
    up; repairs carry an impulse *repair_cost* besides restoring
    service.  The rate reward is *busy_power* while serving (server up
    and at least one job present).
    """
    net = StochasticRewardNet()
    net.add_place("queue")
    net.add_place("up", tokens=1)
    net.add_place("down")

    net.add_timed_transition("arrive", arrival_rate,
                             outputs=["queue"],
                             inhibitors=[("queue", capacity)])
    net.add_timed_transition("serve", service_rate,
                             inputs=["queue", "up"],
                             outputs=["up"])
    net.add_timed_transition("fail", failure_rate,
                             inputs=["up"], outputs=["down"])
    net.add_timed_transition("repair", repair_rate,
                             inputs=["down"], outputs=["up"],
                             impulse=repair_cost)

    net.set_reward(lambda m: busy_power
                   if m["up"] and m["queue"] > 0 else 0.0)
    net.add_label("busy", lambda m: m["up"] > 0 and m["queue"] > 0)
    net.add_label("full", lambda m: m["queue"] >= capacity)
    net.add_label("idle", lambda m: m["queue"] == 0)
    return net


def mm1_breakdown_model(capacity: int = 5, **parameters
                        ) -> MarkovRewardModel:
    """The MRM underlying :func:`mm1_breakdown_srn`.

    State space: ``(queue length 0..capacity) x (up | down)`` --
    ``2 * (capacity + 1)`` states.
    """
    return build_mrm(mm1_breakdown_srn(capacity=capacity, **parameters))
