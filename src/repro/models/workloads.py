"""Synthetic model generators for tests, examples and benchmarks.

These provide controlled workloads for the scaling/ablation studies:

* :func:`random_mrm` -- random labelled MRMs (hypothesis-style fuzzing
  and cross-engine agreement tests);
* :func:`birth_death_mrm` -- an M/M/1-style queue with occupancy
  reward (smooth, well-understood transient behaviour);
* :func:`cycle_mrm` -- a deterministic ring (worst case for
  steady-state detection);
* :func:`degradable_multiprocessor` -- Meyer's classic performability
  model: ``n`` processors failing and being repaired, reward =
  processing capacity;
* :func:`workstation_cluster` -- a small dependable cluster with
  workstations and a repair unit, in the spirit of the case study of
  [Haverkort, Hermanns, Katoen 2000] cited by the paper;
* :func:`grid_mrm` -- a ``width x height`` lattice random walk whose
  state count scales quadratically (the |S| ~ 10^4 workload of
  ``benchmarks/bench_kernels.py``).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ctmc.builder import ModelBuilder
from repro.ctmc.mrm import MarkovRewardModel


def random_mrm(num_states: int,
               density: float = 0.4,
               max_rate: float = 3.0,
               reward_levels: Sequence[float] = (0.0, 1.0, 2.0),
               seed: Optional[int] = None,
               ensure_connected: bool = True) -> MarkovRewardModel:
    """A random MRM with the given size and transition density.

    Every ordered state pair gets a transition with probability
    *density* and a uniform rate in ``(0, max_rate]``; rewards are
    drawn uniformly from *reward_levels*.  With *ensure_connected* a
    random cycle through all states is added so the chain has no
    unreachable parts (keeps transient quantities non-degenerate).
    """
    rng = np.random.default_rng(seed)
    builder = ModelBuilder()
    for s in range(num_states):
        labels = []
        if rng.random() < 0.5:
            labels.append("green")
        if rng.random() < 0.3:
            labels.append("red")
        builder.add_state(f"s{s}", labels=labels,
                          reward=float(rng.choice(reward_levels)))
    for src in range(num_states):
        for dst in range(num_states):
            if src != dst and rng.random() < density:
                builder.add_transition(src, dst,
                                       float(rng.uniform(0.05, max_rate)))
    if ensure_connected and num_states > 1:
        order = rng.permutation(num_states)
        for i in range(num_states):
            builder.add_transition(int(order[i]),
                                   int(order[(i + 1) % num_states]),
                                   float(rng.uniform(0.05, max_rate)))
    return builder.build(initial_state=0)


def birth_death_mrm(capacity: int,
                    arrival_rate: float = 1.0,
                    service_rate: float = 1.5,
                    reward_per_job: float = 1.0) -> MarkovRewardModel:
    """An M/M/1/c queue whose reward rate is the queue occupancy."""
    builder = ModelBuilder()
    for level in range(capacity + 1):
        labels = ["empty"] if level == 0 else []
        if level == capacity:
            labels.append("full")
        builder.add_state(f"q{level}", labels=labels,
                          reward=reward_per_job * level)
    for level in range(capacity):
        builder.add_transition(level, level + 1, arrival_rate)
        builder.add_transition(level + 1, level, service_rate)
    return builder.build(initial_state=0)


def cycle_mrm(num_states: int, rate: float = 1.0) -> MarkovRewardModel:
    """A unidirectional ring; state ``s`` has reward ``s``."""
    builder = ModelBuilder()
    for s in range(num_states):
        builder.add_state(f"c{s}", labels=("start",) if s == 0 else (),
                          reward=float(s))
    for s in range(num_states):
        builder.add_transition(s, (s + 1) % num_states, rate)
    return builder.build(initial_state=0)


def degradable_multiprocessor(processors: int,
                              failure_rate: float = 0.1,
                              repair_rate: float = 1.0,
                              coverage: float = 1.0
                              ) -> MarkovRewardModel:
    """Meyer's degradable multiprocessor.

    State ``k`` has ``k`` operational processors; processors fail
    independently (rate ``k * failure_rate``, with probability
    ``1 - coverage`` a failure crashes the whole system) and a single
    repair unit restores them one at a time.  The reward rate is the
    number of operational processors -- accumulated reward is the
    amount of useful work, Meyer's performability variable.

    Labels: ``operational`` (k > 0), ``degraded`` (0 < k < n),
    ``down`` (k = 0).
    """
    builder = ModelBuilder()
    for k in range(processors + 1):
        labels = []
        if k > 0:
            labels.append("operational")
        if 0 < k < processors:
            labels.append("degraded")
        if k == 0:
            labels.append("down")
        builder.add_state(f"p{k}", labels=labels, reward=float(k))
    for k in range(1, processors + 1):
        total_failure = k * failure_rate
        builder.add_transition(k, k - 1, total_failure * coverage)
        if coverage < 1.0 and k >= 2:
            builder.add_transition(k, 0, total_failure * (1.0 - coverage))
        if k < processors:
            builder.add_transition(k, k + 1, repair_rate)
    builder.add_transition(0, 1, repair_rate)
    return builder.build(initial_state=processors)


def workstation_cluster(workstations: int,
                        failure_rate: float = 0.02,
                        repair_rate: float = 2.0,
                        minimum_operational: Optional[int] = None
                        ) -> MarkovRewardModel:
    """A small dependable cluster with one shared repair unit.

    State ``k`` = number of working stations; the reward rate is the
    delivered service capacity ``k`` and the label ``available`` marks
    states providing at least *minimum_operational* (default:
    three-quarters of the cluster) stations.
    """
    if minimum_operational is None:
        minimum_operational = max(1, (3 * workstations) // 4)
    builder = ModelBuilder()
    for k in range(workstations + 1):
        labels = []
        if k >= minimum_operational:
            labels.append("available")
        if k == 0:
            labels.append("outage")
        builder.add_state(f"w{k}", labels=labels, reward=float(k))
    for k in range(1, workstations + 1):
        builder.add_transition(k, k - 1, k * failure_rate)
        if k < workstations:
            builder.add_transition(k, k + 1, repair_rate)
    builder.add_transition(0, 1, repair_rate)
    return builder.build(initial_state=workstations)


def grid_mrm(width: int,
             height: int,
             rate: float = 1.0,
             reward_levels: Sequence[float] = (0.0, 1.0, 2.0)
             ) -> MarkovRewardModel:
    """A ``width x height`` lattice random walk with banded rewards.

    State ``(x, y)`` moves to its four lattice neighbours at the given
    *rate* (edges simply have fewer neighbours), so the generator is a
    sparse banded matrix with at most four off-diagonals -- the shape
    the kernel backends are benchmarked on.  The reward rate of a
    state is ``reward_levels[x % len(reward_levels)]``, which gives
    every reward class a macroscopic share of the state space.  The
    corner ``(0, 0)`` is labelled ``start`` and carries the initial
    probability; the opposite corner is labelled ``goal``.
    """
    if width < 1 or height < 1:
        raise ValueError("grid_mrm needs width >= 1 and height >= 1")
    builder = ModelBuilder()
    levels = list(reward_levels)
    for y in range(height):
        for x in range(width):
            labels = []
            if x == 0 and y == 0:
                labels.append("start")
            if x == width - 1 and y == height - 1:
                labels.append("goal")
            builder.add_state(f"g{x}_{y}", labels=labels,
                              reward=float(levels[x % len(levels)]))

    def index(x: int, y: int) -> int:
        return y * width + x

    for y in range(height):
        for x in range(width):
            here = index(x, y)
            if x + 1 < width:
                builder.add_transition(here, index(x + 1, y), rate)
                builder.add_transition(index(x + 1, y), here, rate)
            if y + 1 < height:
                builder.add_transition(here, index(x, y + 1), rate)
                builder.add_transition(index(x, y + 1), here, rate)
    return builder.build(initial_state=0)
