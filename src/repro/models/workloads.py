"""Synthetic model generators for tests, examples and benchmarks.

These provide controlled workloads for the scaling/ablation studies:

* :func:`random_mrm` -- random labelled MRMs (hypothesis-style fuzzing
  and cross-engine agreement tests);
* :func:`birth_death_mrm` -- an M/M/1-style queue with occupancy
  reward (smooth, well-understood transient behaviour);
* :func:`cycle_mrm` -- a deterministic ring (worst case for
  steady-state detection);
* :func:`degradable_multiprocessor` -- Meyer's classic performability
  model: ``n`` processors failing and being repaired, reward =
  processing capacity;
* :func:`workstation_cluster` -- a small dependable cluster with
  workstations and a repair unit, in the spirit of the case study of
  [Haverkort, Hermanns, Katoen 2000] cited by the paper;
* :func:`grid_mrm` -- a ``width x height`` lattice random walk whose
  state count scales quadratically (the |S| ~ 10^4 workload of
  ``benchmarks/bench_kernels.py``);
* :func:`crowd_mrm` -- ``members`` replicated pedestrians on a ring of
  ``sites``: a replica-symmetric model that the lumping pre-pass
  collapses from ``sites * members`` states to ``sites`` blocks;
* :func:`virus_mrm` -- a density-dependent SIR epidemic over
  ``(infected, recovered)`` counts, ``(n + 1)(n + 2) / 2`` states with
  *no* non-trivial lumping -- the sparse-backend stress test.

The large generators (``grid_mrm`` aside, which predates them) build
their CSR matrices directly from vectorised index arithmetic instead
of going through :class:`~repro.ctmc.builder.ModelBuilder`, so
constructing a |S| ~ 10^5 instance takes milliseconds, not minutes.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.ctmc.builder import ModelBuilder
from repro.ctmc.mrm import MarkovRewardModel


def random_mrm(num_states: int,
               density: float = 0.4,
               max_rate: float = 3.0,
               reward_levels: Sequence[float] = (0.0, 1.0, 2.0),
               seed: Optional[int] = None,
               ensure_connected: bool = True) -> MarkovRewardModel:
    """A random MRM with the given size and transition density.

    Every ordered state pair gets a transition with probability
    *density* and a uniform rate in ``(0, max_rate]``; rewards are
    drawn uniformly from *reward_levels*.  With *ensure_connected* a
    random cycle through all states is added so the chain has no
    unreachable parts (keeps transient quantities non-degenerate).
    """
    rng = np.random.default_rng(seed)
    builder = ModelBuilder()
    for s in range(num_states):
        labels = []
        if rng.random() < 0.5:
            labels.append("green")
        if rng.random() < 0.3:
            labels.append("red")
        builder.add_state(f"s{s}", labels=labels,
                          reward=float(rng.choice(reward_levels)))
    for src in range(num_states):
        for dst in range(num_states):
            if src != dst and rng.random() < density:
                builder.add_transition(src, dst,
                                       float(rng.uniform(0.05, max_rate)))
    if ensure_connected and num_states > 1:
        order = rng.permutation(num_states)
        for i in range(num_states):
            builder.add_transition(int(order[i]),
                                   int(order[(i + 1) % num_states]),
                                   float(rng.uniform(0.05, max_rate)))
    return builder.build(initial_state=0)


def birth_death_mrm(capacity: int,
                    arrival_rate: float = 1.0,
                    service_rate: float = 1.5,
                    reward_per_job: float = 1.0) -> MarkovRewardModel:
    """An M/M/1/c queue whose reward rate is the queue occupancy."""
    builder = ModelBuilder()
    for level in range(capacity + 1):
        labels = ["empty"] if level == 0 else []
        if level == capacity:
            labels.append("full")
        builder.add_state(f"q{level}", labels=labels,
                          reward=reward_per_job * level)
    for level in range(capacity):
        builder.add_transition(level, level + 1, arrival_rate)
        builder.add_transition(level + 1, level, service_rate)
    return builder.build(initial_state=0)


def cycle_mrm(num_states: int, rate: float = 1.0) -> MarkovRewardModel:
    """A unidirectional ring; state ``s`` has reward ``s``."""
    builder = ModelBuilder()
    for s in range(num_states):
        builder.add_state(f"c{s}", labels=("start",) if s == 0 else (),
                          reward=float(s))
    for s in range(num_states):
        builder.add_transition(s, (s + 1) % num_states, rate)
    return builder.build(initial_state=0)


def degradable_multiprocessor(processors: int,
                              failure_rate: float = 0.1,
                              repair_rate: float = 1.0,
                              coverage: float = 1.0
                              ) -> MarkovRewardModel:
    """Meyer's degradable multiprocessor.

    State ``k`` has ``k`` operational processors; processors fail
    independently (rate ``k * failure_rate``, with probability
    ``1 - coverage`` a failure crashes the whole system) and a single
    repair unit restores them one at a time.  The reward rate is the
    number of operational processors -- accumulated reward is the
    amount of useful work, Meyer's performability variable.

    Labels: ``operational`` (k > 0), ``degraded`` (0 < k < n),
    ``down`` (k = 0).
    """
    builder = ModelBuilder()
    for k in range(processors + 1):
        labels = []
        if k > 0:
            labels.append("operational")
        if 0 < k < processors:
            labels.append("degraded")
        if k == 0:
            labels.append("down")
        builder.add_state(f"p{k}", labels=labels, reward=float(k))
    for k in range(1, processors + 1):
        total_failure = k * failure_rate
        builder.add_transition(k, k - 1, total_failure * coverage)
        if coverage < 1.0 and k >= 2:
            builder.add_transition(k, 0, total_failure * (1.0 - coverage))
        if k < processors:
            builder.add_transition(k, k + 1, repair_rate)
    builder.add_transition(0, 1, repair_rate)
    return builder.build(initial_state=processors)


def workstation_cluster(workstations: int,
                        failure_rate: float = 0.02,
                        repair_rate: float = 2.0,
                        minimum_operational: Optional[int] = None
                        ) -> MarkovRewardModel:
    """A small dependable cluster with one shared repair unit.

    State ``k`` = number of working stations; the reward rate is the
    delivered service capacity ``k`` and the label ``available`` marks
    states providing at least *minimum_operational* (default:
    three-quarters of the cluster) stations.
    """
    if minimum_operational is None:
        minimum_operational = max(1, (3 * workstations) // 4)
    builder = ModelBuilder()
    for k in range(workstations + 1):
        labels = []
        if k >= minimum_operational:
            labels.append("available")
        if k == 0:
            labels.append("outage")
        builder.add_state(f"w{k}", labels=labels, reward=float(k))
    for k in range(1, workstations + 1):
        builder.add_transition(k, k - 1, k * failure_rate)
        if k < workstations:
            builder.add_transition(k, k + 1, repair_rate)
    builder.add_transition(0, 1, repair_rate)
    return builder.build(initial_state=workstations)


def grid_mrm(width: int,
             height: int,
             rate: float = 1.0,
             reward_levels: Sequence[float] = (0.0, 1.0, 2.0)
             ) -> MarkovRewardModel:
    """A ``width x height`` lattice random walk with banded rewards.

    State ``(x, y)`` moves to its four lattice neighbours at the given
    *rate* (edges simply have fewer neighbours), so the generator is a
    sparse banded matrix with at most four off-diagonals -- the shape
    the kernel backends are benchmarked on.  The reward rate of a
    state is ``reward_levels[x % len(reward_levels)]``, which gives
    every reward class a macroscopic share of the state space.  The
    corner ``(0, 0)`` is labelled ``start`` and carries the initial
    probability; the opposite corner is labelled ``goal``.
    """
    if width < 1 or height < 1:
        raise ValueError("grid_mrm needs width >= 1 and height >= 1")
    builder = ModelBuilder()
    levels = list(reward_levels)
    for y in range(height):
        for x in range(width):
            labels = []
            if x == 0 and y == 0:
                labels.append("start")
            if x == width - 1 and y == height - 1:
                labels.append("goal")
            builder.add_state(f"g{x}_{y}", labels=labels,
                              reward=float(levels[x % len(levels)]))

    def index(x: int, y: int) -> int:
        return y * width + x

    for y in range(height):
        for x in range(width):
            here = index(x, y)
            if x + 1 < width:
                builder.add_transition(here, index(x + 1, y), rate)
                builder.add_transition(index(x + 1, y), here, rate)
            if y + 1 < height:
                builder.add_transition(here, index(x, y + 1), rate)
                builder.add_transition(index(x, y + 1), here, rate)
    return builder.build(initial_state=0)


def crowd_mrm(sites: int,
              members: int,
              forward_rate: float = 2.0,
              backward_rate: float = 1.0,
              shuffle_rate: float = 0.25) -> MarkovRewardModel:
    """``members`` replicated pedestrians on a ring of ``sites``.

    State ``(site, member)`` tracks which *member copy* of the crowd a
    pedestrian belongs to while walking a ring of sites: forward along
    the ring at a site-dependent rate, backward at a constant rate,
    plus a slow "shuffle" that moves forward while switching to the
    next member copy.  Every rate, the reward (the congestion class of
    the site) and the labels depend on the **site only**, so the
    ``sites * members`` states are replica-symmetric in the member
    axis: the coarsest ordinary lumping has exactly ``sites`` blocks,
    whatever ``members`` is.  That makes this the canonical pre-pass
    workload -- |S| = 10^5 checks collapse to a few hundred propagated
    states -- and the shuffle keeps the member axis genuinely
    connected, so the reduction is *discovered*, not an artefact of a
    block-diagonal chain.  The congestion classes follow a fixed
    *aperiodic* pseudo-random sequence over the sites: a periodic
    pattern (say ``site % 3``) would leave rotational near-symmetries
    that partition refinement can only break one ring step per pass,
    turning the pre-pass into O(sites) passes; the aperiodic colouring
    separates the site axis within a handful of passes.

    Labels: ``lobby`` (site 0), ``exit`` (the last site), ``crowded``
    (sites with congestion class 2).  All initial mass sits on state
    ``(0, 0)``.
    """
    if sites < 2 or members < 1:
        raise ValueError("crowd_mrm needs sites >= 2 and members >= 1")
    n = sites * members
    state = np.arange(n, dtype=np.int64)
    site = state // members
    member = state % members
    # Deterministic aperiodic congestion class per site (Knuth-style
    # multiplicative hash -- reproducible, no RNG state).
    site_class = ((np.arange(sites, dtype=np.uint64)
                   * np.uint64(2654435761)) >> np.uint64(8)
                  ).astype(np.int64) % 3
    congestion = site_class[site]
    site_forward = forward_rate * (1.0 + 0.5 * congestion.astype(float))

    def index(new_site: np.ndarray, new_member: np.ndarray
              ) -> np.ndarray:
        return new_site * members + new_member

    rows = [state, state]
    cols = [index((site + 1) % sites, member),
            index((site - 1) % sites, member)]
    vals = [site_forward, np.full(n, float(backward_rate))]
    if members > 1 and shuffle_rate > 0.0:
        rows.append(state)
        cols.append(index((site + 1) % sites, (member + 1) % members))
        vals.append(np.full(n, float(shuffle_rate)))
    rates = sp.coo_matrix(
        (np.concatenate(vals),
         (np.concatenate(rows), np.concatenate(cols))),
        shape=(n, n)).tocsr()

    rewards = congestion.astype(float)
    labels = {
        "lobby": set(np.flatnonzero(site == 0).tolist()),
        "exit": set(np.flatnonzero(site == sites - 1).tolist()),
        "crowded": set(np.flatnonzero(congestion == 2).tolist()),
    }
    initial = np.zeros(n)
    initial[0] = 1.0
    return MarkovRewardModel(rates, rewards=rewards, labels=labels,
                             initial_distribution=initial)


def virus_mrm(population: int,
              infection_rate: float = 2.0,
              recovery_rate: float = 1.0,
              outbreak_fraction: float = 0.25) -> MarkovRewardModel:
    """A density-dependent SIR epidemic over population counts.

    State ``(i, r)`` has ``i`` infected, ``r`` recovered and
    ``population - i - r`` susceptible individuals; infection fires at
    rate ``infection_rate * i * s / population`` and recovery at
    ``recovery_rate * i``.  The reward rate is the number of infected
    (accumulated reward = person-time of infection, the epidemic's
    burden), so reward classes, labels and dynamics all vary with the
    exact count pair: the model has **no** non-trivial ordinary
    lumping, which makes it the counterweight to :func:`crowd_mrm` --
    the sparse kernel backend is the only thing that scales it.  The
    state count is ``(population + 1)(population + 2) / 2``
    (``population = 450`` gives |S| = 101,926).

    Labels: ``outbreak`` (at least ``outbreak_fraction`` of the
    population infected), ``extinct`` (no infected left).  All initial
    mass sits on ``(1, 0)`` -- one index case.
    """
    if population < 2:
        raise ValueError("virus_mrm needs a population of at least 2")
    n = population
    # Enumerate (i, r) with i + r <= n, i-major: counts[i] = n - i + 1.
    counts = n + 1 - np.arange(n + 1, dtype=np.int64)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    total = int(counts.sum())
    infected = np.repeat(np.arange(n + 1, dtype=np.int64), counts)
    recovered = np.arange(total, dtype=np.int64) - starts[infected]
    susceptible = n - infected - recovered

    rows = []
    cols = []
    vals = []
    can_infect = (infected >= 1) & (susceptible >= 1)
    src = np.flatnonzero(can_infect)
    rows.append(src)
    cols.append(starts[infected[src] + 1] + recovered[src])
    vals.append(infection_rate * infected[src] * susceptible[src]
                / float(n))
    can_recover = infected >= 1
    src = np.flatnonzero(can_recover)
    rows.append(src)
    cols.append(starts[infected[src] - 1] + recovered[src] + 1)
    vals.append(recovery_rate * infected[src].astype(float))
    rates = sp.coo_matrix(
        (np.concatenate(vals),
         (np.concatenate(rows), np.concatenate(cols))),
        shape=(total, total)).tocsr()

    rewards = infected.astype(float)
    threshold = max(1, int(np.ceil(outbreak_fraction * n)))
    labels = {
        "outbreak": set(np.flatnonzero(
            infected >= threshold).tolist()),
        "extinct": set(np.flatnonzero(infected == 0).tolist()),
    }
    initial = np.zeros(total)
    initial[starts[1]] = 1.0  # state (i=1, r=0)
    return MarkovRewardModel(rates, rewards=rewards, labels=labels,
                             initial_distribution=initial)
