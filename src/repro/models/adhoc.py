"""The paper's case study: a battery-powered ad hoc network station.

Section 5 of the paper models a single mobile station that handles ad
hoc traffic and ordinary calls concurrently (Fig. 2), as a stochastic
reward net whose rate rewards are the station's power consumption in
mA (Table 1).  The basic time unit is one hour, the basic reward unit
1 mA; a full battery holds 750 mAh.

The station's two threads run concurrently unless it dozes:

* call thread: ``call_idle -> (launch) call_initiated -> (connect)
  call_active``, initiated calls may be abandoned (``give_up``);
  incoming calls ring (``ring``), are accepted (``accept``) or
  interrupted by the remote station (``interrupt``); active calls end
  with ``disconnect``;
* ad hoc thread: a neighbour's ``request`` makes the station relay
  traffic (``adhoc_active``) until both sides ``reconfirm``;
* power saving: with both threads idle the station may ``doze``
  (20 mA) until a ``wake_up``.

The underlying MRM has 9 tangible states (4 call-thread states x 2 ad
hoc states + doze); the Theorem-1 reduction for property Q3 leaves 3
transient and 2 absorbing states, with uniformisation rate 19.5/h --
so at t = 24 h the paper's N(epsilon) truncation depths of Table 2
(lambda * t = 468) are reproduced exactly.

The module also records the paper's measured values of Tables 2-4 so
tests and benchmarks can compare against them.
"""

from __future__ import annotations

from typing import Dict

from repro.ctmc.mrm import MarkovRewardModel
from repro.mc.transform import AmalgamatedReduction, \
    amalgamated_until_reduction
from repro.srn.net import StochasticRewardNet
from repro.srn.reachability import build_mrm

#: Transition rates (per hour), Table 1 of the paper.
RATES: Dict[str, float] = {
    "accept": 180.0,       # mean 20 sec
    "connect": 360.0,      # mean 10 sec
    "disconnect": 15.0,    # mean 4 min
    "doze": 12.0,          # mean 5 min
    "give_up": 60.0,       # mean 1 min
    "interrupt": 60.0,     # mean 1 min
    "launch": 0.75,        # mean 80 min
    "reconfirm": 15.0,     # mean 4 min
    "request": 6.0,        # mean 10 min
    "ring": 0.75,          # mean 80 min
    "wake_up": 3.75,       # mean 16 min
}

#: Power consumption per occupied place (mA), Table 1 of the paper.
PLACE_REWARDS: Dict[str, float] = {
    "adhoc_active": 150.0,
    "adhoc_idle": 50.0,
    "call_active": 200.0,
    "call_idle": 50.0,
    "call_incoming": 150.0,
    "call_initiated": 150.0,
}

#: Power consumption in doze mode (mA).
DOZE_REWARD = 20.0

#: Battery capacity when fully charged (mAh), Section 5.3.
BATTERY_CAPACITY_MAH = 750.0

#: The properties of Section 5.3 in the library's concrete syntax.
#: "80% of the power" is 0.8 * 750 mAh = 600 mAh.
Q1 = "P>0.5 [ F[0,inf][0,600] call_incoming ]"
Q2 = "P>0.5 [ F[0,24] call_incoming ]"
Q3 = ("P>0.5 [ (call_idle | doze) U[0,24][0,600] call_initiated ]")

#: Time and reward bound of Q3 (hours, mAh).
Q3_TIME_BOUND = 24.0
Q3_REWARD_BOUND = 600.0

#: Reference value for the Q3 path probability: the paper's most
#: accurate run (occupation-time algorithm at epsilon = 1e-8, Table 2).
Q3_REFERENCE_VALUE = 0.49540399

#: Table 2 of the paper: (epsilon, N_epsilon, value).
TABLE2_OCCUPATION_TIME = [
    (1e-1, 496, 0.44831203),
    (1e-2, 519, 0.49068833),
    (1e-3, 536, 0.49492396),
    (1e-4, 551, 0.49536172),
    (1e-5, 563, 0.49539940),
    (1e-6, 574, 0.49540351),
    (1e-7, 585, 0.49540395),
    (1e-8, 594, 0.49540399),
]

#: Table 3 of the paper: (phases k, value, relative error in percent).
TABLE3_PSEUDO_ERLANG = [
    (1, 0.41067310, 17.10),
    (2, 0.45466923, 8.22),
    (4, 0.47730297, 3.65),
    (8, 0.48742851, 1.61),
    (16, 0.49177955, 0.73),
    (32, 0.49369656, 0.34),
    (64, 0.49457832, 0.17),
    (128, 0.49499840, 0.08),
    (256, 0.49520304, 0.04),
    (512, 0.49530398, 0.02),
    (1024, 0.49535410, 0.01),
]

#: Table 4 of the paper: (step d, value, relative error in percent).
#: The d column of the scanned paper is partly illegible; the values
#: are consistent with halving from 1/64 (runtimes quadruple per row,
#: and coarser steps would make 1 - E(s) d negative).
TABLE4_DISCRETIZATION = [
    (1.0 / 64, 0.49566676, 0.05),
    (1.0 / 128, 0.49553603, 0.03),
    (1.0 / 256, 0.49547017, 0.01),
    (1.0 / 512, 0.49543712, 0.01),
]


def build_adhoc_srn() -> StochasticRewardNet:
    """The SRN of Fig. 2 with the rates and rewards of Table 1."""
    net = StochasticRewardNet()
    net.add_place("call_idle", tokens=1)
    net.add_place("call_initiated")
    net.add_place("call_incoming")
    net.add_place("call_active")
    net.add_place("adhoc_idle", tokens=1)
    net.add_place("adhoc_active")
    net.add_place("doze")

    # Call thread.
    net.add_timed_transition("launch", RATES["launch"],
                             inputs=["call_idle"],
                             outputs=["call_initiated"])
    net.add_timed_transition("connect", RATES["connect"],
                             inputs=["call_initiated"],
                             outputs=["call_active"])
    net.add_timed_transition("give_up", RATES["give_up"],
                             inputs=["call_initiated"],
                             outputs=["call_idle"])
    net.add_timed_transition("ring", RATES["ring"],
                             inputs=["call_idle"],
                             outputs=["call_incoming"])
    net.add_timed_transition("accept", RATES["accept"],
                             inputs=["call_incoming"],
                             outputs=["call_active"])
    net.add_timed_transition("interrupt", RATES["interrupt"],
                             inputs=["call_incoming"],
                             outputs=["call_idle"])
    net.add_timed_transition("disconnect", RATES["disconnect"],
                             inputs=["call_active"],
                             outputs=["call_idle"])

    # Ad hoc thread.
    net.add_timed_transition("request", RATES["request"],
                             inputs=["adhoc_idle"],
                             outputs=["adhoc_active"])
    net.add_timed_transition("reconfirm", RATES["reconfirm"],
                             inputs=["adhoc_active"],
                             outputs=["adhoc_idle"])

    # Doze mode: both threads must be idle.
    net.add_timed_transition("doze", RATES["doze"],
                             inputs=["call_idle", "adhoc_idle"],
                             outputs=["doze"])
    net.add_timed_transition("wake_up", RATES["wake_up"],
                             inputs=["doze"],
                             outputs=["call_idle", "adhoc_idle"])

    def power(marking) -> float:
        """Power consumption: 20 mA dozing, else additive per place."""
        if marking["doze"]:
            return DOZE_REWARD
        return sum(reward for place, reward in PLACE_REWARDS.items()
                   if marking[place] > 0)

    net.set_reward(power)
    return net


def adhoc_model() -> MarkovRewardModel:
    """The 9-state MRM underlying the case-study SRN."""
    return build_mrm(build_adhoc_srn())


def reduced_q3_model() -> AmalgamatedReduction:
    """The Theorem-1 reduction for property Q3.

    ``Phi = call_idle | doze``, ``Psi = call_initiated``; the result
    has 3 transient states plus an amalgamated goal and fail state, as
    reported in Section 5.4 of the paper.
    """
    model = adhoc_model()
    phi = set(model.states_with("call_idle")) | set(
        model.states_with("doze"))
    psi = set(model.states_with("call_initiated"))
    return amalgamated_until_reduction(model, phi, psi)
