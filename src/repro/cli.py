"""Command-line interface.

Examples
--------
Check a formula on a model stored in MRMC-style files::

    repro check --model path/to/model --formula "P>0.5 [ F[0,10] red ]"

Run the paper's case study (property Q3, all three engines)::

    repro case-study

Print the case-study SRN and its underlying MRM::

    repro case-study --describe
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

import numpy as np

from repro.algorithms import (DiscretizationEngine, ErlangEngine,
                              SericolaEngine, available_engines, get_engine)
from repro.ctmc import io as model_io
from repro.exec import EXECUTOR_NAMES
from repro.mc.checker import ModelChecker


def main(argv: Optional[list] = None) -> int:
    """Entry point of the ``repro`` command.

    ``SIGINT`` (Ctrl-C) is not a crash: any sweep checkpoint has
    already been flushed cell by cell (the checkpoint file is fsynced
    per append and closed by the executor's teardown on the way out),
    so the command prints where to resume from and exits with the
    conventional ``130``.
    """
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        return args.handler(args)
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        checkpoint = getattr(args, "checkpoint", None)
        if checkpoint:
            print(f"progress is checkpointed in {checkpoint}; re-run "
                  f"the same command to resume from it",
                  file=sys.stderr)
        return 130


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CSRL performability model checker "
                    "(DSN 2002 reproduction)")
    sub = parser.add_subparsers(dest="command")

    check = sub.add_parser(
        "check", help="check a CSRL formula on a model from disk")
    check.add_argument("--model", required=True,
                       help="base path of the .tra/.lab/.rew files, or "
                            "'adhoc' for the paper's case-study model")
    check.add_argument("--formula", required=True,
                       help="CSRL state formula, e.g. "
                            "'P>0.5 [ a U[0,24][0,600] b ]'; with "
                            "--model adhoc, 'Q1'/'Q2'/'Q3' name the "
                            "paper's properties")
    check.add_argument("--engine", default="sericola",
                       choices=available_engines(),
                       help="engine for time+reward bounded until")
    check.add_argument("--kernel", default=None,
                       choices=("numpy", "numba", "sparse", "dense"),
                       help="propagation kernel backend (default: the "
                            "REPRO_KERNEL env var, else auto per "
                            "model: sparse for large sparse models, "
                            "else numba when importable, else numpy)")
    check.add_argument("-v", "--verbose", action="store_true",
                       help="print the resolved engine, kernel "
                            "backend and lumping pre-pass outcome")
    check.add_argument("--no-lump", action="store_true",
                       help="disable the automatic lumping pre-pass "
                            "(P3 checks then always propagate the "
                            "unminimised reduced model)")
    check.add_argument("--initial-state", type=int, default=0,
                       help="0-based initial state index")
    check.add_argument("--epsilon", type=float, default=1e-9,
                       help="numerical accuracy")
    check.add_argument("--certify", action="store_true",
                       help="certified mode: sound probability "
                            "intervals, three-valued verdict "
                            "(TRUE/FALSE/UNKNOWN) and engine fallback")
    check.add_argument("--budget", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock budget per certified query")
    check.add_argument("--max-rounds", type=int, default=None,
                       help="refinement-round budget per certified "
                            "query (initial runs count too)")
    check.add_argument("--target-width", type=float, default=None,
                       help="keep refining until the certified "
                            "interval is at most this wide")
    check.add_argument("--fallback", default=None,
                       help="comma-separated engine fallback chain "
                            "for --certify (default: sericola,"
                            "erlang,discretization)")
    check.add_argument("--sweep-times", default=None, metavar="T,T,...",
                       help="comma-separated time bounds: sweep the "
                            "formula's until over a (t, r) grid "
                            "instead of one check (needs "
                            "--sweep-rewards)")
    check.add_argument("--sweep-rewards", default=None,
                       metavar="R,R,...",
                       help="comma-separated reward bounds for the "
                            "sweep grid")
    check.add_argument("--executor", default=None,
                       choices=EXECUTOR_NAMES,
                       help="sweep execution substrate: 'thread' "
                            "(in-process, default) or 'process' "
                            "(crash-isolated worker processes with "
                            "retries and per-task timeouts)")
    check.add_argument("--checkpoint", default=None, metavar="FILE",
                       help="durable sweep checkpoint (JSONL): "
                            "completed cells are appended as they "
                            "finish and a re-run with the same file "
                            "resumes instead of recomputing")
    check.add_argument("--max-workers", type=int, default=None,
                       help="worker cap for sweep runs (default: "
                            "scale to the machine)")
    check.add_argument("--profile", action="store_true",
                       help="capture spans/metrics during the check "
                            "and print the profile report (span tree, "
                            "cache hit ratios, timings, convergence)")
    check.add_argument("--trace-out", default=None, metavar="FILE",
                       help="write the captured span trace as JSON "
                            "lines to FILE (implies capturing)")
    check.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="serve the live metrics registry as "
                            "Prometheus text on "
                            "http://127.0.0.1:PORT/metrics for the "
                            "duration of the run (0 = ephemeral "
                            "port; the URL is printed to stderr)")
    check.add_argument("--progress", action="store_true",
                       help="live progress line on stderr for "
                            "process-executor sweeps: cells "
                            "done/total, rate, ETA, worker states, "
                            "open breakers, RSS")
    check.set_defaults(handler=_cmd_check)

    profile = sub.add_parser(
        "profile",
        help="run a formula with observability on and print only the "
             "profile report")
    profile.add_argument("--model", required=True,
                         help="base path of the .tra/.lab/.rew files, "
                              "or 'adhoc' for the case-study model")
    profile.add_argument("--formula", required=True,
                         help="CSRL state formula (or Q1/Q2/Q3 with "
                              "--model adhoc)")
    profile.add_argument("--engine", default="sericola",
                         choices=available_engines(),
                         help="engine for time+reward bounded until")
    profile.add_argument("--kernel", default=None,
                         choices=("numpy", "numba", "sparse", "dense"),
                         help="propagation kernel backend (default: "
                              "REPRO_KERNEL env var, else auto)")
    profile.add_argument("--no-lump", action="store_true",
                         help="disable the automatic lumping pre-pass")
    profile.add_argument("--initial-state", type=int, default=0,
                         help="0-based initial state index")
    profile.add_argument("--epsilon", type=float, default=1e-9,
                         help="numerical accuracy")
    profile.add_argument("--trace-out", default=None, metavar="FILE",
                         help="also write the JSON-lines span trace")
    profile.add_argument("--shape", action="store_true",
                         help="print the span-tree shape (names and "
                              "nesting as JSON) instead of the human "
                              "report -- the CI golden format")
    profile.set_defaults(handler=_cmd_profile)

    case = sub.add_parser(
        "case-study",
        help="run the paper's ad hoc network case study (Section 5)")
    case.add_argument("--describe", action="store_true",
                      help="print the SRN and MRM instead of checking")
    case.add_argument("--epsilon", type=float, default=1e-8)
    case.add_argument("--erlang-phases", type=int, default=256)
    case.add_argument("--step", type=float, default=1.0 / 64)
    case.add_argument("--kernel", default=None,
                      choices=("numpy", "numba", "sparse", "dense"),
                      help="propagation kernel backend for all three "
                           "engines (default: REPRO_KERNEL env var, "
                           "else auto)")
    case.set_defaults(handler=_cmd_case_study)

    lint = sub.add_parser(
        "lint",
        help="static diagnostics over a model, formula and engine "
             "choice -- no engine runs; usable as a CI gate")
    lint.add_argument("--model", required=True,
                      help="base path of the .tra/.lab/.rew files")
    lint.add_argument("--formula", default=None,
                      help="CSRL state formula to analyse against the "
                           "model (optional)")
    lint.add_argument("--engine", default="all",
                      help="engine name whose compatibility to judge, "
                           "or 'all' (default) for every registered "
                           "engine, or 'none'")
    lint.add_argument("--initial-state", type=int, default=0,
                      help="0-based initial state index")
    lint.add_argument("--format", default="text",
                      choices=("text", "json"),
                      help="output format (default: text)")
    lint.add_argument("--fail-on", default="error",
                      choices=("warning", "error"),
                      help="lowest severity that fails the run "
                           "(default: error)")
    lint.set_defaults(handler=_cmd_lint)

    engines = sub.add_parser("engines", help="list available engines")
    engines.set_defaults(handler=_cmd_engines)

    lump = sub.add_parser(
        "lump", help="bisimulation-minimise a model and report sizes")
    lump.add_argument("--model", required=True,
                      help="base path of the .tra/.lab/.rew files")
    lump.add_argument("--output",
                      help="base path to write the quotient model to")
    lump.set_defaults(handler=_cmd_lump)

    dot = sub.add_parser(
        "export-dot", help="render a model as a Graphviz digraph")
    dot.add_argument("--model", required=True,
                     help="base path of the .tra/.lab/.rew files")
    dot.set_defaults(handler=_cmd_export_dot)
    return parser


def _load_model(path: str, initial_state: int):
    """A model from disk, or the paper's case study for ``adhoc``."""
    if path == "adhoc":
        from repro.models import adhoc
        return adhoc.adhoc_model()
    return model_io.load_mrm(path, initial_state=initial_state)


def _resolve_formula(formula: str, model_path: str) -> str:
    """Expand the Q1/Q2/Q3 shortcuts of the ``adhoc`` model."""
    if model_path == "adhoc" and formula in ("Q1", "Q2", "Q3"):
        from repro.models import adhoc
        return getattr(adhoc, formula)
    return formula


def _make_engine(args):
    """The engine named by ``--engine``, on the ``--kernel`` backend."""
    kernel = getattr(args, "kernel", None)
    if args.engine == "sericola":
        return SericolaEngine(epsilon=args.epsilon, kernel=kernel)
    return get_engine(args.engine, kernel=kernel)


def _emit_capture(args) -> None:
    """Write/print what ``OBS.capture`` collected, per the flags."""
    from repro.obs import OBS
    from repro.obs.export import render_profile, write_jsonl
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            count = write_jsonl(OBS.tracer.spans(), handle)
        print(f"trace: {count} spans written to {args.trace_out}",
              file=sys.stderr)
    if getattr(args, "profile", False):
        print()
        print(render_profile(OBS.tracer, OBS.metrics, OBS.convergence),
              end="")


def _cmd_check(args) -> int:
    model = _load_model(args.model, args.initial_state)
    engine = _make_engine(args)
    if args.verbose:
        print(f"engine: {engine.name}  kernel: "
              f"{getattr(engine, 'kernel', 'n/a')}", file=sys.stderr)
    checker = ModelChecker(model, engine=engine, epsilon=args.epsilon,
                           lump=False if args.no_lump else "auto")
    formula = _resolve_formula(args.formula, args.model)
    server = None
    if args.metrics_port is not None:
        from repro.obs import serve_metrics
        server = serve_metrics(port=args.metrics_port)
        print(f"metrics: serving {server.url}", file=sys.stderr)
    try:
        if not (args.profile or args.trace_out):
            return _run_check(checker, model, formula, args)
        from repro.obs import OBS
        with OBS.capture():
            code = _run_check(checker, model, formula, args)
        _emit_capture(args)
        return code
    finally:
        if server is not None:
            server.close()


def _run_check(checker: ModelChecker, model, formula: str, args) -> int:
    from repro.errors import PreflightError
    if args.sweep_times is not None or args.sweep_rewards is not None:
        return _sweep_check(checker, model, formula, args)
    if args.executor is not None or args.checkpoint is not None:
        print("--executor/--checkpoint apply to sweep runs; add "
              "--sweep-times and --sweep-rewards", file=sys.stderr)
        return 2
    if args.certify:
        return _certified_check(checker, model, formula, args)
    try:
        result = checker.check(formula)
    except PreflightError as exc:
        print(f"the {args.engine} engine cannot handle this query:",
              file=sys.stderr)
        for diagnostic in exc.diagnostics:
            print(diagnostic.render(), file=sys.stderr)
        print("(repro lint shows the full analysis; pass a different "
              "--engine or fix the model/formula)", file=sys.stderr)
        return 2
    if args.verbose:
        _report_verbose(checker, file=sys.stderr)
    print(result)
    if result.probabilities is not None:
        for s in range(model.num_states):
            marker = "*" if s in result.states else " "
            print(f" {marker} {model.name_of(s):30s} "
                  f"{result.probabilities[s]:.8f}")
    print(f"holds initially: {result.holds_initially}")
    return 0 if result.holds_initially else 1


def _report_verbose(checker: ModelChecker, file) -> None:
    """Post-check ``-v`` lines: resolved kernel, pre-pass outcome."""
    resolved = getattr(checker.engine, "last_kernel", None)
    if resolved is not None:
        print(f"kernel resolved: {resolved}", file=file)
    info = checker.last_lump
    if info is None:
        return
    if info.applied:
        print(f"lump: {info.num_states} states -> {info.num_blocks} "
              f"blocks", file=file)
    elif info.num_blocks is not None:
        print(f"lump: {info.num_blocks} blocks found for "
              f"{info.num_states} states, not applied ({info.reason})",
              file=file)
    else:
        print(f"lump: not applied ({info.reason})", file=file)


def _parse_grid_axis(text: Optional[str], flag: str) -> list:
    if not text:
        print(f"sweep runs need both --sweep-times and "
              f"--sweep-rewards ({flag} is missing)", file=sys.stderr)
        raise SystemExit(2)
    try:
        return [float(part) for part in text.split(",") if part.strip()]
    except ValueError:
        print(f"{flag} must be comma-separated numbers, got {text!r}",
              file=sys.stderr)
        raise SystemExit(2)


def _sweep_check(checker: ModelChecker, model, formula: str,
                 args) -> int:
    """``repro check --sweep-times ... --sweep-rewards ...``.

    Evaluates the formula's until operator over the whole ``(t, r)``
    bound grid -- the workload of the paper's tables -- cell by cell
    through the fault-tolerant partial-sweep path, so ``--executor
    process`` shards cells over crash-isolated workers and
    ``--checkpoint`` makes progress durable.  Exit code 0 when every
    cell completed, 1 when some cells are missing (their failures are
    listed; a checkpointed re-run retries only those).
    """
    from repro.logic import ast
    from repro.logic.parser import parse_formula

    parsed = parse_formula(formula)
    path = parsed.path if isinstance(parsed, ast.Prob) else parsed
    if isinstance(path, ast.Eventually):
        path = path.as_until()
    if not isinstance(path, ast.Until):
        print(f"sweep runs need an until formula, got {formula!r}",
              file=sys.stderr)
        return 2
    times = _parse_grid_axis(args.sweep_times, "--sweep-times")
    rewards = _parse_grid_axis(args.sweep_rewards, "--sweep-rewards")

    executor = args.executor
    progress_on = getattr(args, "progress", False)
    if progress_on and args.executor == "process":
        from repro.exec import ProcessShardExecutor

        def _render_progress(snapshot) -> None:
            print("\r" + snapshot.render(), end="", file=sys.stderr,
                  flush=True)

        executor = ProcessShardExecutor(max_workers=args.max_workers,
                                        progress=_render_progress)
    elif progress_on:
        print("--progress needs --executor process; ignoring",
              file=sys.stderr)
    try:
        partial = checker.until_probability_sweep_partial(
            path.left, path.right, times, rewards,
            max_workers=args.max_workers,
            executor=executor, checkpoint=args.checkpoint)
    finally:
        if executor is not args.executor:
            print(file=sys.stderr)  # close the \r progress line

    initial = int(np.argmax(model.initial_distribution))
    total = len(times) * len(rewards)
    done = total - len(partial.unevaluated)
    print(f"sweep: {len(times)} x {len(rewards)} grid of "
          f"{path} bounds, initial state {model.name_of(initial)}")
    print(f"completed {done}/{total} cells"
          + (f" [executor={args.executor}]" if args.executor else ""))
    header = "t \\ r".rjust(10) + "".join(
        f"{r:>12g}" for r in rewards)
    print(header)
    for i, t in enumerate(times):
        cells = []
        for j in range(len(rewards)):
            value = partial.grid[i, j, initial]
            cells.append("         ---" if np.isnan(value)
                         else f"{value:12.8f}")
        print(f"{t:>10g}" + "".join(cells))
    if partial.failures:
        print("failures:", file=sys.stderr)
        for failure in partial.failures:
            print(f"  - {failure}", file=sys.stderr)
            if args.verbose:
                _print_flight_tail(failure, file=sys.stderr)
    if not partial.complete and args.checkpoint:
        print(f"re-run with --checkpoint {args.checkpoint} to retry "
              f"only the missing cells", file=sys.stderr)
    return 0 if partial.complete else 1


def _certified_check(checker: ModelChecker, model, formula: str,
                     args) -> int:
    """``repro check --certify``: three-valued verdict, exit code
    0 = TRUE, 1 = FALSE, 2 = UNKNOWN."""
    from repro.mc.budget import Budget
    from repro.mc.certified import DEFAULT_CHAIN
    from repro.mc.result import Verdict

    chain = DEFAULT_CHAIN if args.fallback is None else tuple(
        name.strip() for name in args.fallback.split(",") if name.strip())
    budget = None
    if args.budget is not None or args.max_rounds is not None:
        budget = Budget(seconds=args.budget, max_rounds=args.max_rounds)
    result = checker.check_certified(formula, chain=chain,
                                     budget=budget,
                                     target_width=args.target_width)
    print(f"{result.formula}")
    print(f"verdict: {result.verdict}")
    for s in range(model.num_states):
        print(f"  {model.name_of(s):30s} "
              f"[{result.lower[s]:.8f}, {result.upper[s]:.8f}]  "
              f"{result.state_verdicts[s]}")
    engine = result.engine or "none"
    print(f"engine: {engine}  rounds: {result.rounds_used}  "
          f"interval width: {result.width:.3e}")
    if result.failures:
        print("degradation record:")
        for failure in result.failures:
            print(f"  - {failure}")
            if args.verbose:
                _print_flight_tail(failure)
    return {Verdict.TRUE: 0, Verdict.FALSE: 1,
            Verdict.UNKNOWN: 2}[result.verdict]


def _print_flight_tail(failure, file=sys.stdout) -> None:
    """``-v``: the dying worker's last flight-recorder events.

    Accepts anything with a ``flight_tail`` attribute -- a
    :class:`~repro.errors.WorkerError`, a
    :class:`~repro.mc.certified.EngineFailure` -- and stays silent
    when there is no tail (thread-pool failures, clean engine errors).
    """
    tail = getattr(failure, "flight_tail", ())
    if not tail:
        cause = getattr(failure, "cause", None)
        tail = getattr(cause, "flight_tail", ())
    if not tail:
        return
    print("    worker flight recorder (last events):", file=file)
    for event in tail:
        kind = event.get("kind", "?")
        detail = " ".join(f"{key}={event[key]!r}"
                          for key in sorted(event)
                          if key not in ("kind", "ts"))
        print(f"      {kind}: {detail}", file=file)


def _cmd_profile(args) -> int:
    """``repro profile``: run one check with observability on and
    print the profile report (or the span-tree shape with --shape)."""
    import json

    from repro.obs import OBS
    from repro.obs.export import (render_profile, span_shape,
                                  write_jsonl)

    model = _load_model(args.model, args.initial_state)
    engine = _make_engine(args)
    checker = ModelChecker(model, engine=engine, epsilon=args.epsilon,
                           lump=False if args.no_lump else "auto")
    formula = _resolve_formula(args.formula, args.model)
    with OBS.capture():
        result = checker.check(formula)
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            write_jsonl(OBS.tracer.spans(), handle)
    if args.shape:
        print(json.dumps(span_shape(list(OBS.tracer.roots)), indent=2))
        return 0
    print(f"{result}")
    print(f"engine: {engine.name}  kernel: "
          f"{getattr(engine, 'kernel', 'n/a')}")
    print()
    print(render_profile(OBS.tracer, OBS.metrics, OBS.convergence),
          end="")
    return 0


def _cmd_case_study(args) -> int:
    from repro.models import adhoc

    if args.describe:
        net = adhoc.build_adhoc_srn()
        print(net.describe())
        model = adhoc.adhoc_model()
        print()
        print(f"underlying MRM: {model}")
        for s in range(model.num_states):
            print(f"  {model.name_of(s):35s} reward "
                  f"{model.reward(s):6.1f} mA")
        return 0

    model = adhoc.adhoc_model()
    checker = ModelChecker(model, epsilon=args.epsilon)
    initial = int(np.argmax(model.initial_distribution))
    print(f"model: {model} (initial state "
          f"{model.name_of(initial)})")
    for name, formula in (("Q1", adhoc.Q1), ("Q2", adhoc.Q2),
                          ("Q3", adhoc.Q3)):
        result = checker.check(formula)
        print(f"{name}: {formula}")
        print(f"    probability {result.probability_of(initial):.8f}  "
              f"-> {'holds' if result.holds_initially else 'does not hold'}"
              f" in the initial state")

    print()
    print("Q3 path probability with all three engines "
          "(paper reference: 0.49540399 +- model reconstruction "
          "tolerance, see EXPERIMENTS.md):")
    phi = "call_idle | doze"
    engines = [
        ("sericola", SericolaEngine(epsilon=args.epsilon,
                                    kernel=args.kernel)),
        ("erlang", ErlangEngine(phases=args.erlang_phases,
                                kernel=args.kernel)),
        ("discretization", DiscretizationEngine(step=args.step,
                                                kernel=args.kernel)),
    ]
    from repro.logic.parser import parse_formula
    q3 = parse_formula(adhoc.Q3)
    for name, engine in engines:
        local = ModelChecker(model, engine=engine, epsilon=args.epsilon)
        start = time.perf_counter()
        vector = local.probability_vector(q3.path)
        elapsed = time.perf_counter() - start
        print(f"  {name:15s} {vector[initial]:.8f}   "
              f"({elapsed:7.2f} s)")
    return 0


def _cmd_lint(args) -> int:
    """``repro lint``: exit 0 = pass, 1 = warnings (with
    ``--fail-on warning``), 2 = errors."""
    from repro import analysis

    model = model_io.load_mrm(args.model,
                              initial_state=args.initial_state)
    if args.engine == "all":
        engines = available_engines()
    elif args.engine == "none":
        engines = ()
    else:
        engines = (args.engine,)
    report = analysis.lint(model=model, formula=args.formula,
                           engine=engines, model_path=args.model)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.to_text(header=f"{args.model}:"))
    return report.exit_code(fail_on=args.fail_on)


def _cmd_engines(args) -> int:
    for name in available_engines():
        print(name)
    return 0


def _cmd_lump(args) -> int:
    from repro.ctmc.lumping import lump

    model = model_io.load_mrm(args.model)
    result = lump(model)
    print(f"original: {model.num_states} states, "
          f"{model.num_transitions} transitions")
    print(f"quotient: {result.quotient.num_states} states, "
          f"{result.quotient.num_transitions} transitions")
    for block_index, members in enumerate(result.blocks):
        if len(members) > 1:
            names = ", ".join(model.name_of(s) for s in members)
            print(f"  block {block_index}: {names}")
    if args.output:
        model_io.save_mrm(result.quotient, args.output)
        print(f"quotient written to {args.output}.tra/.lab/.rew")
    return 0


def _cmd_export_dot(args) -> int:
    from repro.ctmc.export import model_to_dot

    model = model_io.load_mrm(args.model)
    print(model_to_dot(model))
    return 0


if __name__ == "__main__":
    sys.exit(main())
